#include "core/rate_model.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <numeric>
#include <tuple>

#include "obs/metrics.h"
#include "util/kernels.h"
#include "util/poisson.h"

namespace sprout {

namespace {

// Standard normal CDF.
double phi(double x) { return 0.5 * (1.0 + std::erf(x / std::sqrt(2.0))); }

// The SproutParams fields the transition kernel depends on.  Forecast and
// sender knobs do NOT appear: a confidence sweep or lookahead ablation
// shares one matrix.  band_epsilon does — it shapes the packed band — but
// dense_inference does not: the dense rows are identical either way, so an
// exact-reference run shares the banded run's matrix build.
using MatrixKey = std::tuple<int, double, std::int64_t, double, double, double>;

MatrixKey matrix_key(const SproutParams& params) {
  return {params.num_bins,          params.max_rate_pps,
          params.tick.count(),      params.sigma_pps_per_sqrt_s,
          params.outage_escape_rate_per_s, params.band_epsilon};
}

std::mutex& matrix_cache_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<MatrixKey, std::shared_ptr<const TransitionMatrix>>&
matrix_cache_map() {
  static std::map<MatrixKey, std::shared_ptr<const TransitionMatrix>> m;
  return m;
}

}  // namespace

std::shared_ptr<const TransitionMatrix> TransitionMatrixCache::get(
    const SproutParams& params) {
  // Building under the lock serializes first construction per key (the
  // "build once per distinct params" guarantee a parallel sweep wants);
  // hits only pay a map lookup.
  std::lock_guard<std::mutex> lock(matrix_cache_mutex());
  auto& map = matrix_cache_map();
  const MatrixKey key = matrix_key(params);
  // Cache traffic counts unconditionally (cold path; tests assert exact
  // deltas through the registry with obs export on or off).
  static obs::Counter& hits =
      obs::Registry::instance().counter("cache.transition_matrix.hits");
  static obs::Counter& misses =
      obs::Registry::instance().counter("cache.transition_matrix.misses");
  const auto it = map.find(key);
  if (it != map.end()) {
    hits.add();
    return it->second;
  }
  misses.add();
  auto matrix = std::make_shared<const TransitionMatrix>(params);
  // Band occupancy of the most recently built kernel (gauges: last build
  // wins; a sweep over one parameter set sees its own kernel's numbers).
  obs::Registry::instance()
      .gauge("filter.band.mean_bandwidth")
      .set(matrix->mean_bandwidth());
  obs::Registry::instance()
      .gauge("filter.band.max_bandwidth")
      .set(static_cast<double>(matrix->max_bandwidth()));
  obs::Registry::instance()
      .gauge("filter.band.occupancy")
      .set(matrix->mean_bandwidth() /
           static_cast<double>(matrix->num_bins()));
  map.emplace(key, matrix);
  return matrix;
}

RateDistribution::RateDistribution(int num_bins)
    : p_(static_cast<std::size_t>(num_bins)) {
  assert(num_bins >= 2);
  reset_uniform();
}

void RateDistribution::reset_uniform() {
  std::fill(p_.begin(), p_.end(), 1.0 / static_cast<double>(p_.size()));
}

bool RateDistribution::is_normalized(double tol) const {
  const double sum = std::accumulate(p_.begin(), p_.end(), 0.0);
  return std::abs(sum - 1.0) <= tol;
}

void RateDistribution::normalize() {
  const double sum = std::accumulate(p_.begin(), p_.end(), 0.0);
  assert(sum > 0.0);
  for (double& v : p_) v /= sum;
}

double RateDistribution::mean(const SproutParams& params) const {
  double m = 0.0;
  for (int i = 0; i < num_bins(); ++i) m += p_[i] * params.bin_rate(i);
  return m;
}

double RateDistribution::quantile(const SproutParams& params,
                                  double percentile) const {
  assert(percentile >= 0.0 && percentile <= 100.0);
  const double target = percentile / 100.0;
  double cum = 0.0;
  for (int i = 0; i < num_bins(); ++i) {
    cum += p_[i];
    if (cum >= target) return params.bin_rate(i);
  }
  return params.bin_rate(num_bins() - 1);
}

TransitionMatrix::TransitionMatrix(const SproutParams& params)
    : n_(static_cast<std::size_t>(params.num_bins)), m_(n_ * n_, 0.0) {
  const double s =
      params.sigma_pps_per_sqrt_s * std::sqrt(params.tick_seconds());
  assert(s > 0.0);
  assert(params.band_epsilon >= 0.0 && params.band_epsilon < 0.1);
  const double bin_width = params.bin_rate(1) - params.bin_rate(0);

  // Gaussian step discretized over bin cells, with a REFLECTING boundary at
  // zero: rates cannot be negative, and the distinguished outage state must
  // not act as a probability sink under pure diffusion (its cell is only
  // ~bin_width/2 wide while the per-tick σ is ~7 bins; absorbing the whole
  // sub-zero tail there would drag any unobserved belief into "outage").
  // Mass that would land below zero is folded back to +|x|.  The top cell
  // absorbs the upper tail (the paper caps rates at 1000 packets/s).
  auto gaussian_row = [&](double center, double* row) {
    for (std::size_t j = 0; j < n_; ++j) {
      const double lo =
          j == 0 ? 0.0 : params.bin_rate(static_cast<int>(j)) - bin_width / 2;
      const double hi = j + 1 == n_
                            ? 1e30
                            : params.bin_rate(static_cast<int>(j)) + bin_width / 2;
      const double direct = phi((hi - center) / s) - phi((lo - center) / s);
      const double reflected = phi((-lo - center) / s) - phi((-hi - center) / s);
      row[j] = direct + reflected;
    }
  };

  for (std::size_t i = 1; i < n_; ++i) {
    gaussian_row(params.bin_rate(static_cast<int>(i)), &m_[i * n_]);
  }

  // Outage row (λ = 0): sticky.  With probability exp(-λz τ) the outage
  // holds (stay in bin 0); otherwise the rate escapes into λ > 0, spread as
  // the positive half of the Brownian step (renormalized), so the expected
  // outage duration is exactly 1/λz.
  const double escape = 1.0 - std::exp(-params.outage_escape_rate_per_s *
                                       params.tick_seconds());
  std::vector<double> esc_row(n_, 0.0);
  gaussian_row(0.0, esc_row.data());
  esc_row[0] = 0.0;  // escaped: must leave the outage bin
  const double esc_sum = std::accumulate(esc_row.begin(), esc_row.end(), 0.0);
  assert(esc_sum > 0.0);
  m_[0] = 1.0 - escape;
  for (std::size_t j = 1; j < n_; ++j) {
    m_[j] = escape * esc_row[j] / esc_sum;
  }

  // Each row must be a probability distribution.
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = std::accumulate(&m_[i * n_], &m_[(i + 1) * n_], 0.0);
    assert(std::abs(sum - 1.0) < 1e-9);
    for (std::size_t j = 0; j < n_; ++j) m_[i * n_ + j] /= sum;
  }

  build_band(params.band_epsilon);
}

void TransitionMatrix::build_band(double epsilon) {
  band_epsilon_ = epsilon;
  band_lo_.resize(n_);
  band_hi_.resize(n_);
  band_off_.resize(n_ + 1);
  std::size_t packed = 0;
  std::int64_t total_width = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double* row = &m_[i * n_];
    // Greedy tail trim: drop the smaller end entry while the total dropped
    // mass stays within ε.  Rows are unimodal up to the outage column, so
    // end entries are the smallest; trimming them first loses the least.
    std::size_t lo = 0;
    std::size_t hi = n_;
    double dropped = 0.0;
    while (hi - lo > 1) {
      const double left = row[lo];
      const double right = row[hi - 1];
      const double smaller = std::min(left, right);
      if (dropped + smaller > epsilon) break;
      dropped += smaller;
      if (left <= right) {
        ++lo;
      } else {
        --hi;
      }
    }
    band_lo_[i] = static_cast<int>(lo);
    band_hi_[i] = static_cast<int>(hi);
    band_off_[i] = packed;
    packed += hi - lo;
    total_width += static_cast<std::int64_t>(hi - lo);
  }
  band_off_[n_] = packed;
  band_.resize(packed);
  for (std::size_t i = 0; i < n_; ++i) {
    const double* row = &m_[i * n_];
    const auto lo = static_cast<std::size_t>(band_lo_[i]);
    const auto hi = static_cast<std::size_t>(band_hi_[i]);
    // Renormalize the retained span so every band row is still a
    // probability distribution (evolution must conserve mass exactly, not
    // leak ε per tick).  A trim that only removed EXACT zeros (always the
    // case at ε = 0: far Gaussian tails underflow) must copy the row
    // verbatim — dividing by a summed "kept" that is not exactly 1.0 would
    // perturb bits the dense path keeps.
    double dropped = 0.0;
    for (std::size_t j = 0; j < lo; ++j) dropped += row[j];
    for (std::size_t j = hi; j < n_; ++j) dropped += row[j];
    double* out = &band_[band_off_[i]];
    if (dropped == 0.0) {
      for (std::size_t j = lo; j < hi; ++j) out[j - lo] = row[j];
    } else {
      double kept = 0.0;
      for (std::size_t j = lo; j < hi; ++j) kept += row[j];
      assert(kept > 0.0);
      for (std::size_t j = lo; j < hi; ++j) out[j - lo] = row[j] / kept;
    }
    max_bandwidth_ = std::max(max_bandwidth_, static_cast<int>(hi - lo));
  }
  mean_bandwidth_ =
      static_cast<double>(total_width) / static_cast<double>(n_);
  build_blocks();
}

void TransitionMatrix::build_blocks() {
  const std::size_t nblocks = (n_ + 3) / 4;
  block_off_.resize(nblocks);
  block_row_begin_.resize(nblocks);
  block_row_end_.resize(nblocks);
  block_vals_.clear();
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t j0 = 4 * b;
    // Rows whose band overlaps columns [j0, j0+4).  Bands are intervals, so
    // we scan for the first and last overlapping row; rows in between
    // without overlap (possible only if extents were non-monotone) simply
    // contribute an all-zero tile.
    std::size_t begin = n_;
    std::size_t end = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      const auto lo = static_cast<std::size_t>(band_lo_[i]);
      const auto hi = static_cast<std::size_t>(band_hi_[i]);
      if (lo < j0 + 4 && hi > j0) {
        begin = std::min(begin, i);
        end = std::max(end, i + 1);
      }
    }
    if (begin >= end) {
      begin = end = 0;
    }
    block_row_begin_[b] = static_cast<int>(begin);
    block_row_end_[b] = static_cast<int>(end);
    block_off_[b] = block_vals_.size();
    for (std::size_t i = begin; i < end; ++i) {
      const auto lo = static_cast<std::size_t>(band_lo_[i]);
      const auto hi = static_cast<std::size_t>(band_hi_[i]);
      for (std::size_t l = 0; l < 4; ++l) {
        const std::size_t j = j0 + l;
        const bool covered = j < n_ && j >= lo && j < hi;
        block_vals_.push_back(covered ? band_[band_off_[i] + j - lo] : 0.0);
      }
    }
  }
}

namespace {

// Thread-local scratch keeps the matrix itself immutable, so one cached
// instance is safely shared across concurrent sweep cells.
std::vector<double>& evolve_scratch(std::size_t n) {
  thread_local std::vector<double> scratch;
  scratch.assign(n, 0.0);
  return scratch;
}

// Per-pass kernel dispatch tally.  The wrappers in util/kernels.cc carry no
// instrumentation (they are the hottest call sites in the tree), so each
// evolve pass counts its own kernel invocations in a local and flushes once
// here when obs is on.
void tally_kernel_calls(obs::Counter& scalar, obs::Counter& simd,
                        std::int64_t calls) {
  if (calls == 0) return;
  (std::strcmp(kernels::active_backend(), "scalar") == 0 ? scalar : simd)
      .add(calls);
}

}  // namespace

void TransitionMatrix::evolve(RateDistribution& dist) const {
  assert(static_cast<std::size_t>(dist.num_bins()) == n_);
  if (obs::enabled()) {
    static obs::Counter& evolves =
        obs::Registry::instance().counter("filter.evolve.banded");
    evolves.add();
  }
  std::vector<double>& scratch = evolve_scratch(n_);
  const std::vector<double>& p = dist.probabilities();
  std::int64_t axpy_calls = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double pi = p[i];
    if (pi <= 0.0) continue;
    const auto lo = static_cast<std::size_t>(band_lo_[i]);
    const auto width = static_cast<std::size_t>(band_hi_[i]) - lo;
    kernels::axpy(scratch.data() + lo, &band_[band_off_[i]], pi, width);
    ++axpy_calls;
  }
  if (obs::enabled()) {
    static obs::Counter& scalar =
        obs::Registry::instance().counter("kernels.axpy.scalar");
    static obs::Counter& simd =
        obs::Registry::instance().counter("kernels.axpy.avx2");
    tally_kernel_calls(scalar, simd, axpy_calls);
  }
  dist.mutable_probabilities() = scratch;
}

void TransitionMatrix::evolve_dense(RateDistribution& dist) const {
  assert(static_cast<std::size_t>(dist.num_bins()) == n_);
  if (obs::enabled()) {
    static obs::Counter& evolves =
        obs::Registry::instance().counter("filter.evolve.dense");
    evolves.add();
  }
  std::vector<double>& scratch = evolve_scratch(n_);
  const std::vector<double>& p = dist.probabilities();
  for (std::size_t i = 0; i < n_; ++i) {
    const double pi = p[i];
    if (pi <= 0.0) continue;
    const double* row = &m_[i * n_];
    for (std::size_t j = 0; j < n_; ++j) {
      scratch[j] += pi * row[j];
    }
  }
  dist.mutable_probabilities() = scratch;
}

void TransitionMatrix::evolve_batch(
    std::span<RateDistribution* const> dists) const {
  if (dists.empty()) return;
  if (dists.size() == 1) {
    evolve(*dists[0]);
    return;
  }
  if (obs::enabled()) {
    static obs::Counter& passes =
        obs::Registry::instance().counter("filter.evolve.batch_passes");
    static obs::Counter& flows_evolved =
        obs::Registry::instance().counter("filter.evolve.batched_flows");
    passes.add();
    flows_evolved.add(static_cast<std::int64_t>(dists.size()));
  }
  const std::size_t flows = dists.size();
  // Block-column sweep over the precomputed tiles (build_blocks): for each
  // 4-column output block, every flow's accumulator lives in a register
  // across the block's whole row range while the value tiles stream once
  // for all flows — no scratch traffic in the inner loop at all.
  //
  // Bit-identity with serial evolve(): per output column the kernel adds
  // pi[i] * value in ascending-row order from +0.0, the same sequence the
  // row-by-row axpy accumulation produces.  Rows the serial path skips
  // (pi = 0) or does not cover (zero-padded tile lanes) contribute exactly
  // +0.0, which cannot change the bits of a non-negative accumulator.
  const std::size_t nblocks = block_row_begin_.size();
  const std::size_t npad = nblocks * 4;  // stripes padded to the block grid
  thread_local std::vector<double> scratch;
  thread_local std::vector<const double*> coeffs;
  thread_local std::vector<double*> outs;
  scratch.resize(flows * npad);  // every stripe block is overwritten below
  coeffs.resize(flows);
  outs.resize(flows);
  std::int64_t ws4_calls = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const auto begin = static_cast<std::size_t>(block_row_begin_[b]);
    const std::size_t rows =
        static_cast<std::size_t>(block_row_end_[b]) - begin;
    for (std::size_t f = 0; f < flows; ++f) {
      outs[f] = scratch.data() + f * npad + 4 * b;
    }
    if (rows == 0) {
      // No row reaches these columns; a serial evolve leaves them zero.
      for (std::size_t f = 0; f < flows; ++f) {
        outs[f][0] = outs[f][1] = outs[f][2] = outs[f][3] = 0.0;
      }
      continue;
    }
    for (std::size_t f = 0; f < flows; ++f) {
      coeffs[f] = dists[f]->probabilities().data() + begin;
    }
    kernels::weighted_sum4(&block_vals_[block_off_[b]], rows, coeffs.data(),
                           flows, outs.data());
    ++ws4_calls;
  }
  if (obs::enabled()) {
    static obs::Counter& scalar =
        obs::Registry::instance().counter("kernels.weighted_sum4.scalar");
    static obs::Counter& simd =
        obs::Registry::instance().counter("kernels.weighted_sum4.avx2");
    tally_kernel_calls(scalar, simd, ws4_calls);
  }
  for (std::size_t f = 0; f < flows; ++f) {
    std::vector<double>& p = dists[f]->mutable_probabilities();
    std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(f * npad),
              scratch.begin() + static_cast<std::ptrdiff_t>(f * npad + n_),
              p.begin());
  }
}

SproutBayesFilter::SproutBayesFilter(const SproutParams& params)
    : params_(params),
      transitions_(TransitionMatrixCache::get(params)),
      dist_(params.num_bins),
      log_prior_(static_cast<std::size_t>(params.num_bins)) {}

void SproutBayesFilter::evolve() {
  if (batch_evolved_) {
    // This tick's evolution already ran through evolve_batch.
    batch_evolved_ = false;
    return;
  }
  evolve_dist(*transitions_, params_, dist_);
}

void SproutBayesFilter::evolve_batch(
    std::span<SproutBayesFilter* const> filters) {
  // Group by shared kernel; order within a group follows caller order, and
  // per-flow arithmetic is order-independent across flows anyway.
  std::vector<SproutBayesFilter*> pending(filters.begin(), filters.end());
  std::vector<RateDistribution*> group;
  for (std::size_t g = 0; g < pending.size(); ++g) {
    SproutBayesFilter* lead = pending[g];
    if (lead == nullptr) continue;
    assert(!lead->batch_evolved_);
    if (lead->params_.dense_inference) {
      // Exact-reference filters keep the historical dense pass.
      lead->transitions_->evolve_dense(lead->dist_);
      lead->batch_evolved_ = true;
      continue;
    }
    group.clear();
    group.push_back(&lead->dist_);
    for (std::size_t o = g + 1; o < pending.size(); ++o) {
      SproutBayesFilter* other = pending[o];
      if (other == nullptr || other->params_.dense_inference) continue;
      if (other->transitions_.get() == lead->transitions_.get()) {
        assert(!other->batch_evolved_);
        group.push_back(&other->dist_);
        other->batch_evolved_ = true;
        pending[o] = nullptr;
      }
    }
    lead->transitions_->evolve_batch(group);
    lead->batch_evolved_ = true;
  }
}

void SproutBayesFilter::observe(int packets, double fraction) {
  observe_impl(packets, fraction, /*censored=*/false);
}

void SproutBayesFilter::observe_at_least(int packets, double fraction) {
  observe_impl(packets, fraction, /*censored=*/true);
}

void SproutBayesFilter::observe_impl(int packets, double fraction,
                                     bool censored) {
  assert(packets >= 0);
  assert(fraction > 0.0 && fraction <= 1.0);
  if (obs::enabled()) {
    static obs::Counter& observes =
        obs::Registry::instance().counter("filter.observe");
    static obs::Counter& censored_observes =
        obs::Registry::instance().counter("filter.observe.censored");
    observes.add();
    if (censored) censored_observes.add();
  }
  const double tau = params_.tick_seconds() * fraction;
  std::vector<double>& p = dist_.mutable_probabilities();
  // Log-space update avoids underflow when the observation is far from a
  // bin's mean (e.g. 150 packets against λτ = 0.1).
  double max_w = kNegInf;
  for (int i = 0; i < dist_.num_bins(); ++i) {
    const double prior = p[static_cast<std::size_t>(i)];
    if (prior <= 0.0) {
      log_prior_[static_cast<std::size_t>(i)] = kNegInf;
      continue;
    }
    const double mean = params_.bin_rate(i) * tau;
    // A censored tick ("the queue went empty: at least k could have been
    // delivered") uses the survival function, which only rules out rates
    // too slow to have produced k — it never caps the rate from above.
    const double loglik = censored ? poisson_log_survival(packets, mean)
                                   : poisson_log_pmf(packets, mean);
    const double w = std::log(prior) + loglik;
    log_prior_[static_cast<std::size_t>(i)] = w;
    max_w = std::max(max_w, w);
  }
  // Degenerate posterior (can only happen from a zero-probability state):
  // fall back to the uniform prior rather than divide by zero.
  if (max_w == kNegInf) {
    dist_.reset_uniform();
    return;
  }
  for (int i = 0; i < dist_.num_bins(); ++i) {
    const double w = log_prior_[static_cast<std::size_t>(i)];
    p[static_cast<std::size_t>(i)] = w == kNegInf ? 0.0 : std::exp(w - max_w);
  }
  dist_.normalize();
}

}  // namespace sprout

#include "core/rate_model.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <map>
#include <mutex>
#include <numeric>
#include <tuple>

#include "util/poisson.h"

namespace sprout {

namespace {

// Standard normal CDF.
double phi(double x) { return 0.5 * (1.0 + std::erf(x / std::sqrt(2.0))); }

// The SproutParams fields the transition kernel depends on.  Forecast and
// sender knobs do NOT appear: a confidence sweep or lookahead ablation
// shares one matrix.
using MatrixKey = std::tuple<int, double, std::int64_t, double, double>;

MatrixKey matrix_key(const SproutParams& params) {
  return {params.num_bins, params.max_rate_pps, params.tick.count(),
          params.sigma_pps_per_sqrt_s, params.outage_escape_rate_per_s};
}

std::mutex& matrix_cache_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<MatrixKey, std::shared_ptr<const TransitionMatrix>>&
matrix_cache_map() {
  static std::map<MatrixKey, std::shared_ptr<const TransitionMatrix>> m;
  return m;
}

std::atomic<std::int64_t> g_matrix_hits{0};
std::atomic<std::int64_t> g_matrix_misses{0};

}  // namespace

std::shared_ptr<const TransitionMatrix> TransitionMatrixCache::get(
    const SproutParams& params) {
  // Building under the lock serializes first construction per key (the
  // "build once per distinct params" guarantee a parallel sweep wants);
  // hits only pay a map lookup.
  std::lock_guard<std::mutex> lock(matrix_cache_mutex());
  auto& map = matrix_cache_map();
  const MatrixKey key = matrix_key(params);
  const auto it = map.find(key);
  if (it != map.end()) {
    g_matrix_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  g_matrix_misses.fetch_add(1, std::memory_order_relaxed);
  auto matrix = std::make_shared<const TransitionMatrix>(params);
  map.emplace(key, matrix);
  return matrix;
}

std::int64_t TransitionMatrixCache::hits() {
  return g_matrix_hits.load(std::memory_order_relaxed);
}

std::int64_t TransitionMatrixCache::misses() {
  return g_matrix_misses.load(std::memory_order_relaxed);
}

void TransitionMatrixCache::reset_counters() {
  g_matrix_hits.store(0, std::memory_order_relaxed);
  g_matrix_misses.store(0, std::memory_order_relaxed);
}

RateDistribution::RateDistribution(int num_bins)
    : p_(static_cast<std::size_t>(num_bins)) {
  assert(num_bins >= 2);
  reset_uniform();
}

void RateDistribution::reset_uniform() {
  std::fill(p_.begin(), p_.end(), 1.0 / static_cast<double>(p_.size()));
}

bool RateDistribution::is_normalized(double tol) const {
  const double sum = std::accumulate(p_.begin(), p_.end(), 0.0);
  return std::abs(sum - 1.0) <= tol;
}

void RateDistribution::normalize() {
  const double sum = std::accumulate(p_.begin(), p_.end(), 0.0);
  assert(sum > 0.0);
  for (double& v : p_) v /= sum;
}

double RateDistribution::mean(const SproutParams& params) const {
  double m = 0.0;
  for (int i = 0; i < num_bins(); ++i) m += p_[i] * params.bin_rate(i);
  return m;
}

double RateDistribution::quantile(const SproutParams& params,
                                  double percentile) const {
  assert(percentile >= 0.0 && percentile <= 100.0);
  const double target = percentile / 100.0;
  double cum = 0.0;
  for (int i = 0; i < num_bins(); ++i) {
    cum += p_[i];
    if (cum >= target) return params.bin_rate(i);
  }
  return params.bin_rate(num_bins() - 1);
}

TransitionMatrix::TransitionMatrix(const SproutParams& params)
    : n_(static_cast<std::size_t>(params.num_bins)), m_(n_ * n_, 0.0) {
  const double s =
      params.sigma_pps_per_sqrt_s * std::sqrt(params.tick_seconds());
  assert(s > 0.0);
  const double bin_width = params.bin_rate(1) - params.bin_rate(0);

  // Gaussian step discretized over bin cells, with a REFLECTING boundary at
  // zero: rates cannot be negative, and the distinguished outage state must
  // not act as a probability sink under pure diffusion (its cell is only
  // ~bin_width/2 wide while the per-tick σ is ~7 bins; absorbing the whole
  // sub-zero tail there would drag any unobserved belief into "outage").
  // Mass that would land below zero is folded back to +|x|.  The top cell
  // absorbs the upper tail (the paper caps rates at 1000 packets/s).
  auto gaussian_row = [&](double center, double* row) {
    for (std::size_t j = 0; j < n_; ++j) {
      const double lo =
          j == 0 ? 0.0 : params.bin_rate(static_cast<int>(j)) - bin_width / 2;
      const double hi = j + 1 == n_
                            ? 1e30
                            : params.bin_rate(static_cast<int>(j)) + bin_width / 2;
      const double direct = phi((hi - center) / s) - phi((lo - center) / s);
      const double reflected = phi((-lo - center) / s) - phi((-hi - center) / s);
      row[j] = direct + reflected;
    }
  };

  for (std::size_t i = 1; i < n_; ++i) {
    gaussian_row(params.bin_rate(static_cast<int>(i)), &m_[i * n_]);
  }

  // Outage row (λ = 0): sticky.  With probability exp(-λz τ) the outage
  // holds (stay in bin 0); otherwise the rate escapes into λ > 0, spread as
  // the positive half of the Brownian step (renormalized), so the expected
  // outage duration is exactly 1/λz.
  const double escape = 1.0 - std::exp(-params.outage_escape_rate_per_s *
                                       params.tick_seconds());
  std::vector<double> esc_row(n_, 0.0);
  gaussian_row(0.0, esc_row.data());
  esc_row[0] = 0.0;  // escaped: must leave the outage bin
  const double esc_sum = std::accumulate(esc_row.begin(), esc_row.end(), 0.0);
  assert(esc_sum > 0.0);
  m_[0] = 1.0 - escape;
  for (std::size_t j = 1; j < n_; ++j) {
    m_[j] = escape * esc_row[j] / esc_sum;
  }

  // Each row must be a probability distribution.
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = std::accumulate(&m_[i * n_], &m_[(i + 1) * n_], 0.0);
    assert(std::abs(sum - 1.0) < 1e-9);
    for (std::size_t j = 0; j < n_; ++j) m_[i * n_ + j] /= sum;
  }
}

void TransitionMatrix::evolve(RateDistribution& dist) const {
  assert(static_cast<std::size_t>(dist.num_bins()) == n_);
  // Thread-local scratch keeps the matrix itself immutable, so one cached
  // instance is safely shared across concurrent sweep cells.
  thread_local std::vector<double> scratch;
  scratch.assign(n_, 0.0);
  const std::vector<double>& p = dist.probabilities();
  for (std::size_t i = 0; i < n_; ++i) {
    const double pi = p[i];
    if (pi <= 0.0) continue;
    const double* row = &m_[i * n_];
    for (std::size_t j = 0; j < n_; ++j) {
      scratch[j] += pi * row[j];
    }
  }
  dist.mutable_probabilities() = scratch;
}

SproutBayesFilter::SproutBayesFilter(const SproutParams& params)
    : params_(params),
      transitions_(TransitionMatrixCache::get(params)),
      dist_(params.num_bins),
      log_prior_(static_cast<std::size_t>(params.num_bins)) {}

void SproutBayesFilter::evolve() { transitions_->evolve(dist_); }

void SproutBayesFilter::observe(int packets, double fraction) {
  observe_impl(packets, fraction, /*censored=*/false);
}

void SproutBayesFilter::observe_at_least(int packets, double fraction) {
  observe_impl(packets, fraction, /*censored=*/true);
}

void SproutBayesFilter::observe_impl(int packets, double fraction,
                                     bool censored) {
  assert(packets >= 0);
  assert(fraction > 0.0 && fraction <= 1.0);
  const double tau = params_.tick_seconds() * fraction;
  std::vector<double>& p = dist_.mutable_probabilities();
  // Log-space update avoids underflow when the observation is far from a
  // bin's mean (e.g. 150 packets against λτ = 0.1).
  double max_w = kNegInf;
  for (int i = 0; i < dist_.num_bins(); ++i) {
    const double prior = p[static_cast<std::size_t>(i)];
    if (prior <= 0.0) {
      log_prior_[static_cast<std::size_t>(i)] = kNegInf;
      continue;
    }
    const double mean = params_.bin_rate(i) * tau;
    // A censored tick ("the queue went empty: at least k could have been
    // delivered") uses the survival function, which only rules out rates
    // too slow to have produced k — it never caps the rate from above.
    const double loglik = censored ? poisson_log_survival(packets, mean)
                                   : poisson_log_pmf(packets, mean);
    const double w = std::log(prior) + loglik;
    log_prior_[static_cast<std::size_t>(i)] = w;
    max_w = std::max(max_w, w);
  }
  // Degenerate posterior (can only happen from a zero-probability state):
  // fall back to the uniform prior rather than divide by zero.
  if (max_w == kNegInf) {
    dist_.reset_uniform();
    return;
  }
  for (int i = 0; i < dist_.num_bins(); ++i) {
    const double w = log_prior_[static_cast<std::size_t>(i)];
    p[static_cast<std::size_t>(i)] = w == kNegInf ? 0.0 : std::exp(w - max_w);
  }
  dist_.normalize();
}

}  // namespace sprout

// Cross-flow evolution batching for the scenario event loop.
//
// Every Sprout endpoint runs its tick loop on a deterministic schedule
// (first tick, then every `tick` thereafter), and a scenario with N flows
// has up to 2N endpoints whose schedules collide (phases are staggered
// modulo the tick, so cohorts of endpoints share tick instants).  Each
// colliding endpoint would evolve its own posterior through the SAME cached
// transition matrix back to back — N traversals of one kernel.
//
// The batcher exploits the schedules' determinism: endpoints register their
// filters with (first_tick, period) at start; the FIRST endpoint to tick at
// any instant T calls on_tick(T), which evolves every filter due at exactly
// T in one TransitionMatrix::evolve_batch pass per shared kernel.  The
// other endpoints' own evolve() calls then consume the pending-batch mark
// as no-ops.  Bit-identical to the unbatched loop: evolution reads nothing
// but the filter's own posterior, so hoisting it ahead of sibling
// endpoints' same-instant observe/forecast work changes no arithmetic.
//
// Single-threaded (the simulator's event loop is); counters expose how much
// batching actually happened for tests and the perf trajectory.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rate_model.h"
#include "util/units.h"

namespace sprout {

class TickEvolveBatcher {
 public:
  // Registers `filters` as ticking first at `first_tick` and every `period`
  // thereafter.  The pointers must outlive the batcher's use (the scenario
  // owns flows and batcher with the same lifetime).
  void add(std::vector<SproutBayesFilter*> filters, TimePoint first_tick,
           Duration period);

  // Batch-evolves every registered filter due at exactly `now` that has not
  // evolved for this instant yet.  Endpoints call this at the top of their
  // tick; only the first same-instant caller finds work.
  void on_tick(TimePoint now);

  // Filters evolved through a multi-filter batch pass (size >= 2).
  [[nodiscard]] std::int64_t batched_evolves() const {
    return batched_evolves_;
  }
  // on_tick calls that found >= 2 due filters to merge.
  [[nodiscard]] std::int64_t batch_passes() const { return batch_passes_; }

 private:
  struct Entry {
    std::vector<SproutBayesFilter*> filters;
    TimePoint next{};
    Duration period{};
  };

  std::vector<Entry> entries_;
  std::vector<SproutBayesFilter*> due_;  // scratch
  std::int64_t batched_evolves_ = 0;
  std::int64_t batch_passes_ = 0;
};

}  // namespace sprout

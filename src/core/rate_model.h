// Bayesian inference over the link's hidden packet-delivery rate (§3.1-3.2).
//
// The link is modeled as a doubly-stochastic Poisson process: the rate λ
// wanders in Brownian motion (noise power σ) except that λ = 0 (outage) is
// sticky, escaped at rate λz.  λ is discretized into `num_bins` values and
// the posterior is a probability vector updated every tick:
//   1. evolve:    p <- p * TransitionMatrix   (precomputed Gaussian kernel)
//   2. observe:   p_i *= Poisson(k; λ_i τ)    (done in log space)
//   3. normalize: p /= Σ p
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/params.h"

namespace sprout {

// Discrete probability distribution over the rate bins.
class RateDistribution {
 public:
  explicit RateDistribution(int num_bins);

  // Uniform prior ("at program startup, all values of λ equally probable").
  void reset_uniform();

  [[nodiscard]] int num_bins() const { return static_cast<int>(p_.size()); }
  [[nodiscard]] double probability(int i) const { return p_[i]; }
  [[nodiscard]] const std::vector<double>& probabilities() const { return p_; }
  [[nodiscard]] std::vector<double>& mutable_probabilities() { return p_; }

  // Distribution sanity: sums to one within tolerance.
  [[nodiscard]] bool is_normalized(double tol = 1e-9) const;
  void normalize();

  // Posterior summaries (rates in packets/s given the params' bin mapping).
  [[nodiscard]] double mean(const SproutParams& params) const;
  [[nodiscard]] double quantile(const SproutParams& params, double percentile) const;

 private:
  std::vector<double> p_;
};

// Precomputed one-tick evolution kernel.  Immutable after construction
// (evolve() works through a thread-local scratch buffer), so one matrix is
// safely shared across filters, forecasters and sweep threads — see
// TransitionMatrixCache below.
class TransitionMatrix {
 public:
  explicit TransitionMatrix(const SproutParams& params);

  // p <- p * M (in place via a thread-local scratch buffer).
  void evolve(RateDistribution& dist) const;

  [[nodiscard]] double entry(int from, int to) const {
    return m_[static_cast<std::size_t>(from) * n_ + static_cast<std::size_t>(to)];
  }
  [[nodiscard]] int num_bins() const { return static_cast<int>(n_); }

 private:
  std::size_t n_;
  std::vector<double> m_;  // row-major: m_[from][to]
};

// Process-wide cache of transition matrices, keyed by the SproutParams
// fields that determine the kernel (bins, rate grid, tick, σ, λz) — the
// same pattern as the forecaster's Poisson-CDF ForecastTableCache.
// Building a matrix is ~num_bins² Gaussian integrals and every simulation
// constructs at least three (sender filter, receiver filter, forecaster);
// the cache makes that one build per distinct parameter set per process.
// Hit/miss counters make the reuse observable in tests and benches.
class TransitionMatrixCache {
 public:
  // Returns the matrix for `params`, building it on first use.
  // Thread-safe; a given key is only ever built once per process.
  [[nodiscard]] static std::shared_ptr<const TransitionMatrix> get(
      const SproutParams& params);

  [[nodiscard]] static std::int64_t hits();
  [[nodiscard]] static std::int64_t misses();
  static void reset_counters();
};

// The full filter: evolve / observe / normalize.
class SproutBayesFilter {
 public:
  explicit SproutBayesFilter(const SproutParams& params);

  // Step 1: Brownian evolution across one tick.
  void evolve();

  // Steps 2+3: Bayesian update on `packets` observed during a tick covering
  // `fraction` of the tick length (1.0 = full tick), then renormalize.
  void observe(int packets, double fraction = 1.0);

  // Censored update for a SENDER-LIMITED tick: the link delivered everything
  // offered, so the count is only a lower bound on what was deliverable.
  // Uses P[X >= packets] instead of P[X = packets].
  void observe_at_least(int packets, double fraction = 1.0);

  [[nodiscard]] const RateDistribution& distribution() const { return dist_; }
  [[nodiscard]] const SproutParams& params() const { return params_; }
  [[nodiscard]] double mean_rate_pps() const { return dist_.mean(params_); }

  void reset() { dist_.reset_uniform(); }

 private:
  void observe_impl(int packets, double fraction, bool censored);

  SproutParams params_;
  std::shared_ptr<const TransitionMatrix> transitions_;  // cache-shared
  RateDistribution dist_;
  std::vector<double> log_prior_;  // scratch for the log-space update
};

}  // namespace sprout

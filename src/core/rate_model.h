// Bayesian inference over the link's hidden packet-delivery rate (§3.1-3.2).
//
// The link is modeled as a doubly-stochastic Poisson process: the rate λ
// wanders in Brownian motion (noise power σ) except that λ = 0 (outage) is
// sticky, escaped at rate λz.  λ is discretized into `num_bins` values and
// the posterior is a probability vector updated every tick:
//   1. evolve:    p <- p * TransitionMatrix   (precomputed Gaussian kernel)
//   2. observe:   p_i *= Poisson(k; λ_i τ)    (done in log space)
//   3. normalize: p /= Σ p
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/params.h"

namespace sprout {

// Discrete probability distribution over the rate bins.
class RateDistribution {
 public:
  explicit RateDistribution(int num_bins);

  // Uniform prior ("at program startup, all values of λ equally probable").
  void reset_uniform();

  [[nodiscard]] int num_bins() const { return static_cast<int>(p_.size()); }
  [[nodiscard]] double probability(int i) const { return p_[i]; }
  [[nodiscard]] const std::vector<double>& probabilities() const { return p_; }
  [[nodiscard]] std::vector<double>& mutable_probabilities() { return p_; }

  // Distribution sanity: sums to one within tolerance.
  [[nodiscard]] bool is_normalized(double tol = 1e-9) const;
  void normalize();

  // Posterior summaries (rates in packets/s given the params' bin mapping).
  [[nodiscard]] double mean(const SproutParams& params) const;
  [[nodiscard]] double quantile(const SproutParams& params, double percentile) const;

 private:
  std::vector<double> p_;
};

// Precomputed one-tick evolution kernel.  Immutable after construction
// (evolve() works through a thread-local scratch buffer), so one matrix is
// safely shared across filters, forecasters and sweep threads — see
// TransitionMatrixCache below.
//
// Two evolution paths are built from the same Gaussian rows:
//  * banded (default): per-row [lo, hi) extents retaining ≥ 1−ε of the
//    row's mass (ε = SproutParams::band_epsilon), packed contiguously and
//    renormalized, evolved in O(bins · bandwidth) with vectorized
//    accumulation (util/kernels.h);
//  * dense: the full bins² pass, bit-for-bit the historical arithmetic,
//    kept as the exact-reference path (SproutParams::dense_inference).
// ε = 0 trims only entries that are EXACTLY zero (underflowed Gaussian
// tails) and skips renormalization, making the banded path bit-identical
// to the dense one.
class TransitionMatrix {
 public:
  explicit TransitionMatrix(const SproutParams& params);

  // p <- p * M through the banded kernel (in place via thread-local
  // scratch).
  void evolve(RateDistribution& dist) const;

  // p <- p * M through the full dense matrix: the exact-reference path.
  void evolve_dense(RateDistribution& dist) const;

  // Pushes every distribution through one banded matrix pass: rows stream
  // once and are applied to all flows (GEMM-shaped loop order), so N
  // co-active Sprout flows pay the matrix traversal once instead of N
  // times.  Bit-identical to calling evolve() on each entry in order.
  void evolve_batch(std::span<RateDistribution* const> dists) const;

  [[nodiscard]] double entry(int from, int to) const {
    return m_[static_cast<std::size_t>(from) * n_ + static_cast<std::size_t>(to)];
  }
  [[nodiscard]] int num_bins() const { return static_cast<int>(n_); }

  // Band introspection (tests, benches, perf trajectory).
  [[nodiscard]] std::pair<int, int> row_extent(int row) const {
    return {band_lo_[static_cast<std::size_t>(row)],
            band_hi_[static_cast<std::size_t>(row)]};
  }
  [[nodiscard]] int max_bandwidth() const { return max_bandwidth_; }
  [[nodiscard]] double mean_bandwidth() const { return mean_bandwidth_; }
  [[nodiscard]] double band_epsilon() const { return band_epsilon_; }

 private:
  void build_band(double epsilon);
  void build_blocks();

  std::size_t n_;
  std::vector<double> m_;  // row-major: m_[from][to], exact rows
  // Packed band: row i's entries for columns [band_lo_[i], band_hi_[i])
  // live at band_[band_off_[i]...], renormalized to unit row mass.
  std::vector<double> band_;
  std::vector<std::size_t> band_off_;
  std::vector<int> band_lo_;
  std::vector<int> band_hi_;
  int max_bandwidth_ = 0;
  double mean_bandwidth_ = 0.0;
  double band_epsilon_ = 0.0;
  // Block-column layout for evolve_batch: for each 4-column output block b
  // (columns [4b, 4b+4)), the range of rows whose band overlaps the block
  // and a repacked (rows × 4) tile of their band values at those columns,
  // zero where a row's band does not cover a column.  Lets the batched
  // kernel keep per-flow accumulators in registers for a whole block while
  // streaming each tile once for all flows.
  std::vector<double> block_vals_;
  std::vector<std::size_t> block_off_;
  std::vector<int> block_row_begin_;
  std::vector<int> block_row_end_;
};

// Routes one evolve through the path `params` selects: the banded fast
// kernel by default, the dense exact-reference pass under dense_inference.
inline void evolve_dist(const TransitionMatrix& m, const SproutParams& params,
                        RateDistribution& dist) {
  if (params.dense_inference) {
    m.evolve_dense(dist);
  } else {
    m.evolve(dist);
  }
}

// Process-wide cache of transition matrices, keyed by the SproutParams
// fields that determine the kernel (bins, rate grid, tick, σ, λz, band ε) —
// the same pattern as the forecaster's Poisson-CDF ForecastTableCache.
// Building a matrix is ~num_bins² Gaussian integrals and every simulation
// constructs at least three (sender filter, receiver filter, forecaster);
// the cache makes that one build per distinct parameter set per process.
// Reuse is observable through the obs registry counters
// "cache.transition_matrix.hits" / ".misses" (src/obs/metrics.h).
class TransitionMatrixCache {
 public:
  // Returns the matrix for `params`, building it on first use.
  // Thread-safe; a given key is only ever built once per process.
  [[nodiscard]] static std::shared_ptr<const TransitionMatrix> get(
      const SproutParams& params);
};

// The full filter: evolve / observe / normalize.
class SproutBayesFilter {
 public:
  explicit SproutBayesFilter(const SproutParams& params);

  // Step 1: Brownian evolution across one tick.  A no-op consuming the
  // pending-batch mark if this tick's evolution already ran through
  // evolve_batch (see below).
  void evolve();

  // Evolves several filters in one matrix pass per shared kernel.  Filters
  // are grouped by their (cache-shared) TransitionMatrix; each group runs
  // TransitionMatrix::evolve_batch, and each batched filter's next evolve()
  // call becomes a no-op, so callers that cannot reorder the per-filter
  // tick logic (the scenario event loop) can hoist just the evolution.
  // Filters under dense_inference evolve individually (exact reference).
  // Bit-identical to calling evolve() on each filter in order.
  static void evolve_batch(std::span<SproutBayesFilter* const> filters);

  // Steps 2+3: Bayesian update on `packets` observed during a tick covering
  // `fraction` of the tick length (1.0 = full tick), then renormalize.
  void observe(int packets, double fraction = 1.0);

  // Censored update for a SENDER-LIMITED tick: the link delivered everything
  // offered, so the count is only a lower bound on what was deliverable.
  // Uses P[X >= packets] instead of P[X = packets].
  void observe_at_least(int packets, double fraction = 1.0);

  [[nodiscard]] const RateDistribution& distribution() const { return dist_; }
  [[nodiscard]] const SproutParams& params() const { return params_; }
  [[nodiscard]] double mean_rate_pps() const { return dist_.mean(params_); }
  // Identity of the cache-shared kernel (the evolve_batch grouping key).
  [[nodiscard]] const TransitionMatrix* transition_matrix() const {
    return transitions_.get();
  }

  void reset() { dist_.reset_uniform(); }

 private:
  void observe_impl(int packets, double fraction, bool censored);

  SproutParams params_;
  std::shared_ptr<const TransitionMatrix> transitions_;  // cache-shared
  RateDistribution dist_;
  std::vector<double> log_prior_;  // scratch for the log-space update
  bool batch_evolved_ = false;     // evolve_batch already ran this tick
};

}  // namespace sprout

#include "core/strategy.h"

#include <algorithm>
#include <cmath>

namespace sprout {

BayesianForecastStrategy::BayesianForecastStrategy(const SproutParams& params)
    : filter_(params), forecaster_(params) {}

EwmaForecastStrategy::EwmaForecastStrategy(const SproutParams& params,
                                           EwmaParams ewma)
    : params_(params), ewma_(ewma) {}

void EwmaForecastStrategy::observe(int packets) {
  const double sample =
      static_cast<double>(packets) / params_.tick_seconds();
  if (!primed_) {
    // Seed from the first genuine observation instead of ramping from zero.
    rate_pps_ = sample;
    primed_ = true;
    return;
  }
  rate_pps_ = ewma_.gain * sample + (1.0 - ewma_.gain) * rate_pps_;
}

void EwmaForecastStrategy::observe_lower_bound(int packets) {
  const double sample = static_cast<double>(packets) / params_.tick_seconds();
  if (sample > rate_pps_) observe(packets);
}

DeliveryForecast EwmaForecastStrategy::make_forecast(TimePoint now) const {
  DeliveryForecast f;
  f.origin = now;
  f.tick = params_.tick;
  const double per_tick_bytes =
      rate_pps_ * params_.tick_seconds() * static_cast<double>(params_.mtu);
  double cum = 0.0;
  for (int h = 1; h <= params_.forecast_horizon_ticks; ++h) {
    cum += per_tick_bytes;
    f.cumulative_bytes.push_back(static_cast<ByteCount>(cum));
  }
  return f;
}

std::unique_ptr<ForecastStrategy> make_bayesian_strategy(const SproutParams& p) {
  return std::make_unique<BayesianForecastStrategy>(p);
}

std::unique_ptr<ForecastStrategy> make_ewma_strategy(const SproutParams& p,
                                                     EwmaParams e) {
  return std::make_unique<EwmaForecastStrategy>(p, e);
}

}  // namespace sprout

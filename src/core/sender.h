// The Sprout sender (§3.4-3.5): turns the receiver's forecast into an
// evolving window that bounds the risk of queueing delay beyond the
// tolerance (100 ms => 5 ticks of lookahead), while accounting for the
// estimated bytes already in the network queue.
#pragma once

#include <deque>
#include <functional>

#include "core/params.h"
#include "core/wire.h"
#include "util/units.h"

namespace sprout {

class SproutSender {
 public:
  // `emit` hands a finished outgoing message (with wire size) to the owner,
  // which serializes and injects it into the network.
  using EmitFn = std::function<void(SproutWireMessage&&, ByteCount wire_size)>;

  SproutSender(const SproutParams& params, EmitFn emit);

  // New forecast from the receiver's feedback.
  void on_forecast(const ForecastBlock& block, TimePoint now);

  // Called each 20 ms tick: advances the forecast position, decays the
  // queue-occupancy estimate, sends whatever the window and `available`
  // callback allow, and emits a heartbeat if nothing was sent.
  // `pull` returns up to N bytes of application data.
  void tick(TimePoint now, const std::function<ByteCount(ByteCount)>& pull);

  // Current safe-to-send budget (diagnostics; tick() applies it).
  [[nodiscard]] ByteCount window_bytes(TimePoint now) const;

  // Bytes deliverable over the remaining life of the current forecast —
  // the tunnel's total-buffering bound (§4.3).
  [[nodiscard]] ByteCount forecast_life_bytes(TimePoint now) const;

  [[nodiscard]] ByteCount bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] ByteCount queue_estimate() const { return queue_estimate_; }
  [[nodiscard]] bool has_forecast() const { return have_forecast_; }

 private:
  void send_message(ByteCount wire_size, bool heartbeat,
                    std::uint32_t time_to_next_us, TimePoint now);
  [[nodiscard]] std::int64_t forecast_position(TimePoint now) const;
  [[nodiscard]] ByteCount forecast_at(std::int64_t tick_index) const;
  [[nodiscard]] std::int64_t compute_throwaway(TimePoint now) const;
  [[nodiscard]] ByteCount bytes_sent_before(TimePoint t) const;

  SproutParams params_;
  EmitFn emit_;

  ByteCount bytes_sent_ = 0;
  ByteCount queue_estimate_ = 0;

  bool have_forecast_ = false;
  ForecastBlock forecast_;
  TimePoint forecast_origin_{};
  std::int64_t drained_ticks_ = 0;  // forecast ticks already credited

  // (send time, cumulative bytes before packet) for the throwaway number.
  struct SendMark {
    TimePoint at;
    std::int64_t seqno;
  };
  std::deque<SendMark> recent_sends_;
  int idle_ticks_ = 0;              // consecutive ticks with a shut window
  bool limited_this_tick_ = false;  // no confirmed backlog this tick
  ByteCount confirmed_backlog_ = 0; // queue bytes confirmed at last forecast
};

}  // namespace sprout

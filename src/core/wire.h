// Sprout wire format (§3.4).
//
// Every packet carries: a sequence number counting bytes sent so far, a
// "throwaway number" (the sequence offset of the most recent packet sent
// more than 10 ms earlier — everything below it is received-or-lost
// decidable on arrival), and the sender's declared time-to-next-packet so
// an empty queue is not mistaken for an outage.  The receiver piggybacks
// its forecast: cumulative cautious delivery bytes for each coming tick,
// plus the total bytes it has received or written off.
//
// Layout is explicit little-endian with bounds-checked parsing; malformed
// input yields nullopt, never UB.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/units.h"

namespace sprout {

struct SproutHeader {
  static constexpr std::uint32_t kMagic = 0x53505254u;  // "SPRT"
  static constexpr std::uint8_t kVersion = 1;

  static constexpr std::uint8_t kFlagHasForecast = 0x01;
  static constexpr std::uint8_t kFlagHeartbeat = 0x02;
  // The sender believes the network pipe is (about to be) empty: everything
  // unacknowledged is accounted for by packets still in flight.  Ticks made
  // up entirely of such packets are SENDER-limited, so the receiver treats
  // their byte count as a lower bound on the link rate (censored
  // observation) instead of an exact reading.
  static constexpr std::uint8_t kFlagSenderLimited = 0x04;

  std::uint8_t flags = 0;
  std::int64_t seqno = 0;          // bytes sent before this packet
  std::int32_t payload_bytes = 0;  // application bytes carried
  std::int64_t throwaway = 0;      // received-or-lost boundary
  std::uint32_t time_to_next_us = 0;
};

struct ForecastBlock {
  std::int64_t received_or_lost_bytes = 0;
  std::int64_t origin_us = 0;   // receiver clock when computed
  std::uint32_t tick_us = 0;
  std::vector<std::uint32_t> cumulative_bytes;  // one entry per tick
};

struct SproutWireMessage {
  SproutHeader header;
  std::optional<ForecastBlock> forecast;
};

// Serialized size of the header/forecast portions (the app payload itself
// is simulated, not materialized, so the packet's wire size is
// serialized_size + header.payload_bytes).
[[nodiscard]] ByteCount serialized_size(const SproutWireMessage& msg);

[[nodiscard]] std::vector<std::uint8_t> serialize(const SproutWireMessage& msg);

// Serializes into a caller-provided buffer (cleared first, capacity kept) —
// the allocation-free spelling the packet pool (sim/packet_pool.h) builds
// on.  serialize() above is serialize_into() on a fresh vector.
void serialize_into(const SproutWireMessage& msg,
                    std::vector<std::uint8_t>& out);

// Bounds-checked parse; nullopt on truncation, bad magic/version, or an
// oversized forecast.
[[nodiscard]] std::optional<SproutWireMessage> parse(
    std::span<const std::uint8_t> bytes);

}  // namespace sprout

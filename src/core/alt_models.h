// Alternative stochastic link models (§7: "we are eager to explore
// different stochastic network models, including ones trained on empirical
// variations in cellular link speed, to see whether it is possible to
// perform much better than Sprout if a protocol has more accurate
// forecasts").
//
// Two alternatives to the Brownian-λ Cox model, both pluggable into
// SproutEndpoint through the ForecastStrategy interface:
//
//  * MmppForecastStrategy — a Markov-modulated Poisson process: the link
//    sits in one of K discrete rate regimes and jumps between them with a
//    transition matrix *learned online* from regime co-occurrence (MAP
//    state counting with a sticky Dirichlet prior).  Where the paper's
//    model says "rates drift", MMPP says "rates switch" — which matches
//    the regime structure (idle / slow / fast / outage) visible in
//    cellular traces.
//
//  * EmpiricalForecastStrategy — model-free: keeps a sliding window of
//    recent per-tick delivery counts and forecasts the cautious quantile
//    of *observed h-tick sums* ("trained on empirical variations" in the
//    most literal sense).  Sliding sums preserve the short-range
//    correlation a parametric model may miss; the cost is a cold start and
//    blindness to never-yet-seen regimes.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/params.h"
#include "core/strategy.h"

namespace sprout {

struct MmppParams {
  // Number of rate regimes, including the outage state at rate 0.  Rates
  // are log-spaced between min_rate_fraction*max and max (plus the 0 state)
  // so slow regimes get resolution where proportional error matters.
  int num_states = 16;
  double min_rate_fraction = 0.005;
  // Dirichlet pseudo-counts for the learned transition rows: heavy self
  // mass = sticky regimes (the paper's sticky outages, generalized), and
  // cross mass decaying with regime distance — channel fading moves the
  // rate through neighbouring regimes, not in uniform global jumps.  A
  // uniform jump prior makes the forecast's left tail absorb outage mass
  // at every horizon, which starves the window (measured in
  // bench/ablation_forecaster).
  double self_pseudocount = 50.0;
  double cross_pseudocount = 0.5;   // at distance 1, then exp decay
  double locality_decay = 2.0;      // e-folding distance (in states)
  double jump_pseudocount = 0.02;   // floor for arbitrary jumps (outages)
  // Like the base model: forecast from the rate-quantile by default; the
  // Poisson counting-noise variant is kept for ablation.
  bool count_noise_in_forecast = false;
};

class MmppForecastStrategy : public ForecastStrategy {
 public:
  MmppForecastStrategy(const SproutParams& params, MmppParams mmpp = {});

  void advance_tick() override;
  void observe(int packets) override;
  void observe_lower_bound(int packets) override;
  [[nodiscard]] DeliveryForecast make_forecast(TimePoint now) const override;
  [[nodiscard]] double estimated_rate_pps() const override;

  [[nodiscard]] int num_states() const {
    return static_cast<int>(rates_.size());
  }
  [[nodiscard]] double state_rate_pps(int s) const {
    return rates_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const std::vector<double>& belief() const { return belief_; }
  // Learned one-tick transition probability (row-normalized counts).
  [[nodiscard]] double transition_probability(int from, int to) const;
  [[nodiscard]] int map_state() const;

 private:
  void observe_impl(int packets, bool censored);
  [[nodiscard]] std::vector<double> evolve_once(
      const std::vector<double>& b) const;
  [[nodiscard]] double belief_rate_quantile(const std::vector<double>& b,
                                            double percentile) const;
  [[nodiscard]] int mixture_count_quantile(const std::vector<double>& b,
                                           int horizon, double target) const;

  SproutParams params_;
  MmppParams mmpp_;
  std::vector<double> rates_;   // regime rates, ascending, rates_[0] == 0
  std::vector<double> belief_;  // posterior over regimes, sums to 1
  std::vector<double> counts_;  // row-major transition counts (with prior)
  int prev_map_state_ = -1;
};

struct EmpiricalParams {
  // Window of per-tick counts the forecaster "trains" on (1500 ticks of
  // 20 ms = 30 s of history).
  int window_ticks = 1500;
  // Below this many samples the strategy is in cold start and forecasts
  // from the sample mean without caution (matching EWMA's optimism so the
  // protocol can bootstrap itself).
  int min_samples = 25;
};

class EmpiricalForecastStrategy : public ForecastStrategy {
 public:
  EmpiricalForecastStrategy(const SproutParams& params,
                            EmpiricalParams empirical = {});

  void advance_tick() override {}
  void observe(int packets) override;
  // Censored ticks bound the rate only from below; the window admits them
  // only when they would raise the forecast (mirror of the EWMA rule).
  void observe_lower_bound(int packets) override;
  [[nodiscard]] DeliveryForecast make_forecast(TimePoint now) const override;
  [[nodiscard]] double estimated_rate_pps() const override;

  [[nodiscard]] std::size_t samples() const { return window_.size(); }

 private:
  // One tick's delivery count.  A censored sample means the sender offered
  // only `count` packets and the link took them all: the true deliverable
  // count is >= count (right-censored).  In the cautious-quantile order
  // statistics a censored h-sum sorts at the physical link cap — it can
  // raise the forecast, never drag it toward the offered load.
  struct Sample {
    int count = 0;
    bool censored = false;
  };

  void push(Sample s);
  // The cautious percentile of sums of `h` consecutive window counts.
  [[nodiscard]] double h_sum_quantile(int h, double percentile) const;
  [[nodiscard]] double max_packets_per_tick() const;

  SproutParams params_;
  EmpiricalParams empirical_;
  std::deque<Sample> window_;
};

std::unique_ptr<ForecastStrategy> make_mmpp_strategy(const SproutParams& p,
                                                     MmppParams m = {});
std::unique_ptr<ForecastStrategy> make_empirical_strategy(
    const SproutParams& p, EmpiricalParams e = {});

}  // namespace sprout

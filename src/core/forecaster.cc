#include "core/forecaster.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/poisson.h"

namespace sprout {

ByteCount DeliveryForecast::cumulative_at(int t) const {
  if (t <= 0 || cumulative_bytes.empty()) return 0;
  const int idx = std::min(t, ticks()) - 1;
  return cumulative_bytes[static_cast<std::size_t>(idx)];
}

DeliveryForecaster::DeliveryForecaster(const SproutParams& params)
    : params_(params), transitions_(params) {
  const int counts = params_.max_count + 1;
  cdf_.resize(static_cast<std::size_t>(params_.forecast_horizon_ticks));
  for (int h = 1; h <= params_.forecast_horizon_ticks; ++h) {
    std::vector<double>& table = cdf_[static_cast<std::size_t>(h - 1)];
    table.resize(static_cast<std::size_t>(params_.num_bins) *
                 static_cast<std::size_t>(counts));
    for (int bin = 0; bin < params_.num_bins; ++bin) {
      const double mean =
          params_.bin_rate(bin) * params_.tick_seconds() * static_cast<double>(h);
      double* row = &table[static_cast<std::size_t>(bin) *
                           static_cast<std::size_t>(counts)];
      // Forward recurrence over n; identical math to poisson_cdf but filling
      // the whole row in one pass.
      double term = std::exp(-mean);
      double sum = term;
      row[0] = std::min(sum, 1.0);
      for (int n = 1; n < counts; ++n) {
        term *= mean / static_cast<double>(n);
        sum += term;
        row[n] = std::min(sum, 1.0);
      }
    }
  }
}

double DeliveryForecaster::mixture_cdf(const RateDistribution& dist,
                                       int horizon, int count) const {
  const int counts = params_.max_count + 1;
  const std::vector<double>& table = cdf_[static_cast<std::size_t>(horizon - 1)];
  double acc = 0.0;
  for (int bin = 0; bin < params_.num_bins; ++bin) {
    const double p = dist.probability(bin);
    if (p <= 0.0) continue;
    acc += p * table[static_cast<std::size_t>(bin) *
                         static_cast<std::size_t>(counts) +
                     static_cast<std::size_t>(count)];
  }
  return acc;
}

int DeliveryForecaster::quantile_packets(const RateDistribution& dist,
                                         int horizon) const {
  assert(horizon >= 1 && horizon <= params_.forecast_horizon_ticks);
  const double target = params_.forecast_percentile() / 100.0;
  if (!params_.count_noise_in_forecast) {
    // Quantile over the rate posterior alone: the cautious rate times the
    // horizon.  See SproutParams::count_noise_in_forecast.
    const double rate = dist.quantile(params_, params_.forecast_percentile());
    return static_cast<int>(rate * params_.tick_seconds() *
                            static_cast<double>(horizon));
  }
  // Smallest n with mixture CDF >= target.  The CDF is nondecreasing in n,
  // so binary search over [0, max_count].
  int lo = 0;
  int hi = params_.max_count;
  if (mixture_cdf(dist, horizon, 0) >= target) return 0;
  while (lo + 1 < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (mixture_cdf(dist, horizon, mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

DeliveryForecast DeliveryForecaster::forecast(const RateDistribution& current,
                                              TimePoint now) const {
  DeliveryForecast f;
  f.origin = now;
  f.tick = params_.tick;
  f.cumulative_bytes.reserve(
      static_cast<std::size_t>(params_.forecast_horizon_ticks));
  RateDistribution evolved = current;
  ByteCount floor = 0;
  for (int h = 1; h <= params_.forecast_horizon_ticks; ++h) {
    transitions_.evolve(evolved);
    const int packets = quantile_packets(evolved, h);
    ByteCount bytes = static_cast<ByteCount>(packets) * params_.mtu;
    // Cumulative deliveries cannot decrease with a longer horizon.
    bytes = std::max(bytes, floor);
    floor = bytes;
    f.cumulative_bytes.push_back(bytes);
  }
  return f;
}

}  // namespace sprout

#include "core/forecaster.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>

#include "obs/metrics.h"
#include "util/kernels.h"
#include "util/poisson.h"

namespace sprout {

namespace {

// The SproutParams fields the CDF tables depend on.  Confidence, σ and λz
// do NOT appear: the percentile is applied at query time and the transition
// kernel is separate, so e.g. a Figure-9 confidence sweep shares one table.
using TableKey = std::tuple<int, double, std::int64_t, int, int>;

TableKey table_key(const SproutParams& params) {
  return {params.num_bins, params.max_rate_pps, params.tick.count(),
          params.forecast_horizon_ticks, params.max_count};
}

std::shared_ptr<const ForecastTableCache::Tables> build_tables(
    const SproutParams& params) {
  auto tables = std::make_shared<ForecastTableCache::Tables>();
  const int counts = params.max_count + 1;
  const auto bins = static_cast<std::size_t>(params.num_bins);
  tables->resize(static_cast<std::size_t>(params.forecast_horizon_ticks));
  for (int h = 1; h <= params.forecast_horizon_ticks; ++h) {
    std::vector<double>& table = (*tables)[static_cast<std::size_t>(h - 1)];
    table.resize(bins * static_cast<std::size_t>(counts));
    for (int bin = 0; bin < params.num_bins; ++bin) {
      const double mean =
          params.bin_rate(bin) * params.tick_seconds() * static_cast<double>(h);
      // Forward recurrence over n; identical math to poisson_cdf but filling
      // the whole column in one pass.  Writes stride by num_bins (the table
      // is count-major for the hot read path); the build is a cold path.
      double term = std::exp(-mean);
      double sum = term;
      table[static_cast<std::size_t>(bin)] = std::min(sum, 1.0);
      for (int n = 1; n < counts; ++n) {
        term *= mean / static_cast<double>(n);
        sum += term;
        table[static_cast<std::size_t>(n) * bins +
              static_cast<std::size_t>(bin)] = std::min(sum, 1.0);
      }
    }
  }
  return tables;
}

std::mutex& cache_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<TableKey, std::shared_ptr<const ForecastTableCache::Tables>>&
cache_map() {
  static std::map<TableKey, std::shared_ptr<const ForecastTableCache::Tables>>
      m;
  return m;
}

// Nonzero support [lo, hi) of a posterior.  Interior zeros stay in the dot
// span (they contribute exactly +0.0); only the tails are clipped, which is
// where log-space observations actually zero mass out.
struct Support {
  std::size_t lo;
  std::size_t hi;
};

Support support_of(const std::vector<double>& p) {
  std::size_t lo = 0;
  std::size_t hi = p.size();
  while (lo < hi && p[lo] <= 0.0) ++lo;
  while (hi > lo && p[hi - 1] <= 0.0) --hi;
  return {lo, hi};
}

// Per-query dot-dispatch tally.  The kernels::dot wrapper itself carries no
// instrumentation (hottest call sites), so each CDF query counts its probes
// in a local and flushes here when obs is on.
void tally_dot_calls(std::int64_t calls) {
  if (calls == 0) return;
  static obs::Counter& scalar =
      obs::Registry::instance().counter("kernels.dot.scalar");
  static obs::Counter& simd =
      obs::Registry::instance().counter("kernels.dot.avx2");
  (std::strcmp(kernels::active_backend(), "scalar") == 0 ? scalar : simd)
      .add(calls);
}

}  // namespace

std::shared_ptr<const ForecastTableCache::Tables> ForecastTableCache::get(
    const SproutParams& params) {
  // Building under the lock serializes first construction per key, which is
  // exactly the "build once per distinct SproutParams" guarantee a parallel
  // sweep wants; hits only pay a map lookup.
  std::lock_guard<std::mutex> lock(cache_mutex());
  auto& map = cache_map();
  const TableKey key = table_key(params);
  // Cache traffic counts unconditionally (cold path; tests assert exact
  // deltas through the registry with obs export on or off).
  static obs::Counter& hits =
      obs::Registry::instance().counter("cache.forecast_tables.hits");
  static obs::Counter& misses =
      obs::Registry::instance().counter("cache.forecast_tables.misses");
  const auto it = map.find(key);
  if (it != map.end()) {
    hits.add();
    return it->second;
  }
  misses.add();
  auto tables = build_tables(params);
  map.emplace(key, tables);
  return tables;
}

ByteCount DeliveryForecast::cumulative_at(int t) const {
  if (t <= 0 || cumulative_bytes.empty()) return 0;
  const int idx = std::min(t, ticks()) - 1;
  return cumulative_bytes[static_cast<std::size_t>(idx)];
}

DeliveryForecaster::DeliveryForecaster(const SproutParams& params)
    : params_(params),
      transitions_(TransitionMatrixCache::get(params)),
      cdf_(ForecastTableCache::get(params)) {}

double DeliveryForecaster::mixture_cdf(const RateDistribution& dist,
                                       int horizon, int count) const {
  const auto bins = static_cast<std::size_t>(params_.num_bins);
  const std::vector<double>& table =
      (*cdf_)[static_cast<std::size_t>(horizon - 1)];
  const std::vector<double>& p = dist.probabilities();
  const Support s = support_of(p);
  const double* col = &table[static_cast<std::size_t>(count) * bins];
  if (obs::enabled()) tally_dot_calls(1);
  return kernels::dot(p.data() + s.lo, col + s.lo, s.hi - s.lo);
}

int DeliveryForecaster::quantile_packets(const RateDistribution& dist,
                                         int horizon, int floor) const {
  assert(horizon >= 1 && horizon <= params_.forecast_horizon_ticks);
  assert(floor >= 0 && floor <= params_.max_count);
  const double target = params_.forecast_percentile() / 100.0;
  if (!params_.count_noise_in_forecast) {
    // Quantile over the rate posterior alone: the cautious rate times the
    // horizon.  See SproutParams::count_noise_in_forecast.  The caller's
    // max-with-floor clamp makes applying the floor here equivalent.
    const double rate = dist.quantile(params_, params_.forecast_percentile());
    const int packets = static_cast<int>(rate * params_.tick_seconds() *
                                         static_cast<double>(horizon));
    return std::max(packets, floor);
  }
  // Smallest n >= floor with mixture CDF >= target.  One probe at the floor
  // doubles as the early-out (quantile at or below the floor: the caller
  // clamps there anyway) and the search's lower bracket, so every endpoint
  // is evaluated exactly once.  The per-probe work is a contiguous dot over
  // the posterior's nonzero support against one count-major table row.
  const auto bins = static_cast<std::size_t>(params_.num_bins);
  const std::vector<double>& table =
      (*cdf_)[static_cast<std::size_t>(horizon - 1)];
  const std::vector<double>& p = dist.probabilities();
  const Support s = support_of(p);
  const double* pp = p.data() + s.lo;
  const std::size_t len = s.hi - s.lo;
  std::int64_t probes = 0;
  auto cdf_at = [&](int count) {
    ++probes;
    const double* col = &table[static_cast<std::size_t>(count) * bins];
    return kernels::dot(pp, col + s.lo, len);
  };
  const auto flush_probes = [&] {
    if (obs::enabled()) tally_dot_calls(probes);
  };
  if (cdf_at(floor) >= target) {
    flush_probes();
    return floor;
  }
  // Invariant: cdf(lo) < target <= cdf(hi) (hi = max_count acts as the
  // clamp when even the full table row falls short).
  int lo = floor;
  int hi = params_.max_count;
  while (lo + 1 < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (cdf_at(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  flush_probes();
  return hi;
}

DeliveryForecast DeliveryForecaster::forecast(const RateDistribution& current,
                                              TimePoint now) const {
  if (obs::enabled()) {
    static obs::Counter& forecasts =
        obs::Registry::instance().counter("forecast.single");
    forecasts.add();
  }
  DeliveryForecast f;
  f.origin = now;
  f.tick = params_.tick;
  f.cumulative_bytes.reserve(
      static_cast<std::size_t>(params_.forecast_horizon_ticks));
  RateDistribution evolved = current;
  int floor_packets = 0;
  for (int h = 1; h <= params_.forecast_horizon_ticks; ++h) {
    evolve_dist(*transitions_, params_, evolved);
    // Cumulative deliveries cannot decrease with a longer horizon; the
    // previous horizon's count seeds this one's quantile search.
    floor_packets = quantile_packets(evolved, h, floor_packets);
    f.cumulative_bytes.push_back(static_cast<ByteCount>(floor_packets) *
                                 params_.mtu);
  }
  return f;
}

std::vector<DeliveryForecast> DeliveryForecaster::forecast_batch(
    std::span<const RateDistribution* const> dists, TimePoint now) const {
  std::vector<DeliveryForecast> out(dists.size());
  if (dists.empty()) return out;
  if (obs::enabled()) {
    static obs::Counter& passes =
        obs::Registry::instance().counter("forecast.batch_passes");
    static obs::Counter& flows =
        obs::Registry::instance().counter("forecast.batched_flows");
    passes.add();
    flows.add(static_cast<std::int64_t>(dists.size()));
  }
  if (dists.size() == 1 || params_.dense_inference) {
    // The dense reference path has no batch kernel; fall back to serial.
    for (std::size_t f = 0; f < dists.size(); ++f) {
      out[f] = forecast(*dists[f], now);
    }
    return out;
  }
  std::vector<RateDistribution> evolved(dists.size(),
                                        RateDistribution(params_.num_bins));
  std::vector<RateDistribution*> ptrs(dists.size());
  std::vector<int> floors(dists.size(), 0);
  for (std::size_t f = 0; f < dists.size(); ++f) {
    evolved[f] = *dists[f];
    ptrs[f] = &evolved[f];
    out[f].origin = now;
    out[f].tick = params_.tick;
    out[f].cumulative_bytes.reserve(
        static_cast<std::size_t>(params_.forecast_horizon_ticks));
  }
  for (int h = 1; h <= params_.forecast_horizon_ticks; ++h) {
    // One matrix pass evolves every flow's private copy (bit-identical to
    // the serial per-flow evolve); quantiles stay per-flow.
    transitions_->evolve_batch(ptrs);
    for (std::size_t f = 0; f < dists.size(); ++f) {
      floors[f] = quantile_packets(evolved[f], h, floors[f]);
      out[f].cumulative_bytes.push_back(static_cast<ByteCount>(floors[f]) *
                                        params_.mtu);
    }
  }
  return out;
}

}  // namespace sprout

#include "core/forecaster.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>

#include "util/poisson.h"

namespace sprout {

namespace {

// The SproutParams fields the CDF tables depend on.  Confidence, σ and λz
// do NOT appear: the percentile is applied at query time and the transition
// kernel is separate, so e.g. a Figure-9 confidence sweep shares one table.
using TableKey = std::tuple<int, double, std::int64_t, int, int>;

TableKey table_key(const SproutParams& params) {
  return {params.num_bins, params.max_rate_pps, params.tick.count(),
          params.forecast_horizon_ticks, params.max_count};
}

std::shared_ptr<const ForecastTableCache::Tables> build_tables(
    const SproutParams& params) {
  auto tables = std::make_shared<ForecastTableCache::Tables>();
  const int counts = params.max_count + 1;
  tables->resize(static_cast<std::size_t>(params.forecast_horizon_ticks));
  for (int h = 1; h <= params.forecast_horizon_ticks; ++h) {
    std::vector<double>& table = (*tables)[static_cast<std::size_t>(h - 1)];
    table.resize(static_cast<std::size_t>(params.num_bins) *
                 static_cast<std::size_t>(counts));
    for (int bin = 0; bin < params.num_bins; ++bin) {
      const double mean =
          params.bin_rate(bin) * params.tick_seconds() * static_cast<double>(h);
      double* row = &table[static_cast<std::size_t>(bin) *
                           static_cast<std::size_t>(counts)];
      // Forward recurrence over n; identical math to poisson_cdf but filling
      // the whole row in one pass.
      double term = std::exp(-mean);
      double sum = term;
      row[0] = std::min(sum, 1.0);
      for (int n = 1; n < counts; ++n) {
        term *= mean / static_cast<double>(n);
        sum += term;
        row[n] = std::min(sum, 1.0);
      }
    }
  }
  return tables;
}

std::mutex& cache_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<TableKey, std::shared_ptr<const ForecastTableCache::Tables>>&
cache_map() {
  static std::map<TableKey, std::shared_ptr<const ForecastTableCache::Tables>>
      m;
  return m;
}

std::atomic<std::int64_t> g_table_hits{0};
std::atomic<std::int64_t> g_table_misses{0};

}  // namespace

std::shared_ptr<const ForecastTableCache::Tables> ForecastTableCache::get(
    const SproutParams& params) {
  // Building under the lock serializes first construction per key, which is
  // exactly the "build once per distinct SproutParams" guarantee a parallel
  // sweep wants; hits only pay a map lookup.
  std::lock_guard<std::mutex> lock(cache_mutex());
  auto& map = cache_map();
  const TableKey key = table_key(params);
  const auto it = map.find(key);
  if (it != map.end()) {
    g_table_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  g_table_misses.fetch_add(1, std::memory_order_relaxed);
  auto tables = build_tables(params);
  map.emplace(key, tables);
  return tables;
}

std::int64_t ForecastTableCache::hits() {
  return g_table_hits.load(std::memory_order_relaxed);
}

std::int64_t ForecastTableCache::misses() {
  return g_table_misses.load(std::memory_order_relaxed);
}

void ForecastTableCache::reset_counters() {
  g_table_hits.store(0, std::memory_order_relaxed);
  g_table_misses.store(0, std::memory_order_relaxed);
}

ByteCount DeliveryForecast::cumulative_at(int t) const {
  if (t <= 0 || cumulative_bytes.empty()) return 0;
  const int idx = std::min(t, ticks()) - 1;
  return cumulative_bytes[static_cast<std::size_t>(idx)];
}

DeliveryForecaster::DeliveryForecaster(const SproutParams& params)
    : params_(params),
      transitions_(TransitionMatrixCache::get(params)),
      cdf_(ForecastTableCache::get(params)) {}

double DeliveryForecaster::mixture_cdf(const RateDistribution& dist,
                                       int horizon, int count) const {
  const int counts = params_.max_count + 1;
  const std::vector<double>& table = (*cdf_)[static_cast<std::size_t>(horizon - 1)];
  double acc = 0.0;
  for (int bin = 0; bin < params_.num_bins; ++bin) {
    const double p = dist.probability(bin);
    if (p <= 0.0) continue;
    acc += p * table[static_cast<std::size_t>(bin) *
                         static_cast<std::size_t>(counts) +
                     static_cast<std::size_t>(count)];
  }
  return acc;
}

int DeliveryForecaster::quantile_packets(const RateDistribution& dist,
                                         int horizon) const {
  assert(horizon >= 1 && horizon <= params_.forecast_horizon_ticks);
  const double target = params_.forecast_percentile() / 100.0;
  if (!params_.count_noise_in_forecast) {
    // Quantile over the rate posterior alone: the cautious rate times the
    // horizon.  See SproutParams::count_noise_in_forecast.
    const double rate = dist.quantile(params_, params_.forecast_percentile());
    return static_cast<int>(rate * params_.tick_seconds() *
                            static_cast<double>(horizon));
  }
  // Smallest n with mixture CDF >= target.  The CDF is nondecreasing in n,
  // so binary search over [0, max_count].
  int lo = 0;
  int hi = params_.max_count;
  if (mixture_cdf(dist, horizon, 0) >= target) return 0;
  while (lo + 1 < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (mixture_cdf(dist, horizon, mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

DeliveryForecast DeliveryForecaster::forecast(const RateDistribution& current,
                                              TimePoint now) const {
  DeliveryForecast f;
  f.origin = now;
  f.tick = params_.tick;
  f.cumulative_bytes.reserve(
      static_cast<std::size_t>(params_.forecast_horizon_ticks));
  RateDistribution evolved = current;
  ByteCount floor = 0;
  for (int h = 1; h <= params_.forecast_horizon_ticks; ++h) {
    transitions_->evolve(evolved);
    const int packets = quantile_packets(evolved, h);
    ByteCount bytes = static_cast<ByteCount>(packets) * params_.mtu;
    // Cumulative deliveries cannot decrease with a longer horizon.
    bytes = std::max(bytes, floor);
    floor = bytes;
    f.cumulative_bytes.push_back(bytes);
  }
  return f;
}

}  // namespace sprout

// The experiment harness: wires a scheme across an emulated cellular link
// pair and measures the paper's §5.1 metrics.  Every bench binary and the
// integration tests are built on run_experiment().
//
// Topology (data flowing in the preset's direction):
//
//   sender endpoint --> Cellsim(data trace) --> [metrics] --> receiver
//        ^                                                        |
//        +---------- Cellsim(reverse trace) <-- feedback/acks ----+
//
// Both directions use the same network's traces (e.g. "Verizon LTE
// downlink" carries the data, "Verizon LTE uplink" the feedback), a 20 ms
// propagation delay each way (40 ms minimum RTT), and optional Bernoulli
// loss and CoDel, exactly as in §4.2.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/timeseries.h"
#include "runner/schemes.h"
#include "trace/presets.h"
#include "util/units.h"

namespace sprout {

struct ExperimentConfig {
  SchemeId scheme = SchemeId::kSprout;
  LinkPreset link;                  // data direction; feedback uses the twin
  Duration run_time = sec(300);
  Duration warmup = sec(60);        // skipped by all metrics (§5.1)
  Duration propagation_delay = msec(20);
  double loss_rate = 0.0;           // each-way Bernoulli loss (§5.6)
  double sprout_confidence = 95.0;  // Figure 9 sweeps this
  std::uint64_t seed = 42;
  bool capture_series = false;      // fill ExperimentResult::series (Fig. 1)
  Duration series_bin = msec(500);
};

struct ExperimentResult {
  double throughput_kbps = 0.0;
  double delay95_ms = 0.0;              // scheme's 95% end-to-end delay
  double omniscient_delay95_ms = 0.0;   // baseline on the same trace
  double self_inflicted_delay_ms = 0.0; // the paper's headline delay metric
  double mean_delay_ms = 0.0;
  double capacity_kbps = 0.0;
  double utilization = 0.0;             // throughput / capacity
  std::int64_t packets_delivered = 0;
  std::int64_t link_drops = 0;
  std::vector<SeriesPoint> series;           // scheme (if captured)
  std::vector<SeriesPoint> capacity_series;  // link (if captured)
};

[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

// The same experiment over caller-supplied traces (e.g. real captures read
// with read_trace_file, or link/pf_cell.h output) instead of the synthetic
// presets.  This is the drop-in path for users with their own mahimahi-
// format recordings.
struct FileTraceExperimentConfig {
  SchemeId scheme = SchemeId::kSprout;
  Trace forward_trace;              // data direction
  Trace reverse_trace;              // feedback/ack direction
  Duration run_time = sec(300);
  Duration warmup = sec(60);
  Duration propagation_delay = msec(20);
  double loss_rate = 0.0;
  double sprout_confidence = 95.0;
  std::uint64_t seed = 42;
  bool capture_series = false;
  Duration series_bin = msec(500);
};

[[nodiscard]] ExperimentResult run_experiment_on_traces(
    const FileTraceExperimentConfig& config);

// §5.7: Cubic bulk transfer + Skype videoconference sharing the Verizon LTE
// downlink, directly or through SproutTunnel.
struct TunnelContentionConfig {
  std::string network = "Verizon LTE";
  bool via_tunnel = false;
  Duration run_time = sec(300);
  Duration warmup = sec(60);
  Duration propagation_delay = msec(20);
  std::uint64_t seed = 42;
};

struct TunnelContentionResult {
  double cubic_throughput_kbps = 0.0;
  double skype_throughput_kbps = 0.0;
  double skype_delay95_ms = 0.0;  // 95% end-to-end delay of the Skype flow
  double cubic_delay95_ms = 0.0;
};

[[nodiscard]] TunnelContentionResult run_tunnel_contention(
    const TunnelContentionConfig& config);

// §7 extension: "We have not evaluated the performance of multiple Sprouts
// sharing a queue."  Runs `num_flows` identical sender/receiver pairs of
// one scheme through a SINGLE emulated cellular queue in each direction
// (the situation the paper's per-user-queue assumption excludes) and
// reports per-flow shares, Jain fairness, and the delay everyone pays.
struct SharedQueueConfig {
  SchemeId scheme = SchemeId::kSprout;
  int num_flows = 2;
  LinkPreset link;  // data direction; feedback uses the twin
  Duration run_time = sec(300);
  Duration warmup = sec(60);
  Duration propagation_delay = msec(20);
  std::uint64_t seed = 42;
};

struct SharedQueueResult {
  std::vector<double> flow_throughput_kbps;   // one per flow
  std::vector<double> flow_delay95_ms;        // 95% end-to-end delay per flow
  double aggregate_throughput_kbps = 0.0;
  double jain_index = 1.0;                    // fairness of throughput shares
  double max_delay95_ms = 0.0;
  double capacity_kbps = 0.0;
  double aggregate_utilization = 0.0;
};

[[nodiscard]] SharedQueueResult run_shared_queue(const SharedQueueConfig& config);

}  // namespace sprout

// Thin, paper-shaped views over the unified scenario engine
// (runner/scenario.h).  Each call narrows a ScenarioResult to the result
// vocabulary of one of the paper's experiment families:
//
//   * run_experiment        — one flow on dedicated queues (§5.1-§5.6)
//   * run_shared_queue      — N flows commingled in ONE queue (§7)
//   * run_tunnel_contention — Cubic + Skype, direct or tunneled (§5.7)
//
// All topology wiring, scheme construction (runner/registry.h) and metric
// computation live in run_scenario(); these wrappers only check that the
// spec's topology matches the requested view and repackage the fields.
//
// DEPRECATED: run_scenario() + ScenarioResult's accessors (throughput_kbps(),
// delay95_ms(), flow_metrics(i), population_delay()) express everything
// these narrow result structs do, for every topology including ones the
// views cannot represent (heterogeneous queues, towers).  The views survive
// one more PR for out-of-tree callers; define
// SPROUT_ALLOW_DEPRECATED_EXPERIMENT_API before including this header to
// compile against them without warnings.
#pragma once

#ifdef SPROUT_ALLOW_DEPRECATED_EXPERIMENT_API
#define SPROUT_DEPRECATED_EXPERIMENT_API(msg)
#else
#define SPROUT_DEPRECATED_EXPERIMENT_API(msg) [[deprecated(msg)]]
#endif

#include <cstdint>
#include <vector>

#include "metrics/timeseries.h"
#include "runner/scenario.h"
#include "runner/schemes.h"
#include "trace/presets.h"
#include "util/units.h"

namespace sprout {

struct ExperimentResult {
  double throughput_kbps = 0.0;
  double delay95_ms = 0.0;              // scheme's 95% end-to-end delay
  double omniscient_delay95_ms = 0.0;   // baseline on the same trace
  double self_inflicted_delay_ms = 0.0; // the paper's headline delay metric
  double mean_delay_ms = 0.0;
  double capacity_kbps = 0.0;
  double utilization = 0.0;             // throughput / capacity
  std::int64_t packets_delivered = 0;
  std::int64_t link_drops = 0;
  std::vector<SeriesPoint> series;           // scheme (if captured)
  std::vector<SeriesPoint> capacity_series;  // link (if captured)
};

// Runs `spec` (which must be a single-flow topology) and returns the
// paper's §5.1 single-flow metrics.
SPROUT_DEPRECATED_EXPERIMENT_API(
    "use run_scenario(); ScenarioResult carries every single-flow metric")
[[nodiscard]] ExperimentResult run_experiment(const ScenarioSpec& spec,
                                              ScenarioCache* cache = nullptr);

struct SharedQueueResult {
  std::vector<double> flow_throughput_kbps;   // one per flow
  std::vector<double> flow_delay95_ms;        // 95% end-to-end delay per flow
  double aggregate_throughput_kbps = 0.0;
  double jain_index = 1.0;                    // fairness of throughput shares
  double max_delay95_ms = 0.0;
  double capacity_kbps = 0.0;
  double aggregate_utilization = 0.0;
};

// Runs `spec` (which must be a HOMOGENEOUS shared-queue topology):
// num_flows identical sender/receiver pairs of one scheme through a SINGLE
// emulated cellular queue in each direction, reporting per-flow shares,
// Jain fairness, and the delay everyone pays.  Heterogeneous flow lists
// (TopologySpec::heterogeneous_queue) carry per-flow schemes, parameter
// overrides and activity windows this result shape cannot express; run
// them through run_scenario() directly.
SPROUT_DEPRECATED_EXPERIMENT_API(
    "use run_scenario(); ScenarioResult carries per-flow shares and fairness")
[[nodiscard]] SharedQueueResult run_shared_queue(const ScenarioSpec& spec,
                                                 ScenarioCache* cache = nullptr);

struct TunnelContentionResult {
  double cubic_throughput_kbps = 0.0;
  double skype_throughput_kbps = 0.0;
  double skype_delay95_ms = 0.0;  // 95% end-to-end delay of the Skype flow
  double cubic_delay95_ms = 0.0;
};

// Runs `spec` (which must be a tunnel-contention topology): Cubic bulk
// transfer + Skype videoconference sharing the link's downlink, directly
// or through SproutTunnel.
SPROUT_DEPRECATED_EXPERIMENT_API(
    "use run_scenario(); flows[0] is the Cubic flow, flows[1] the Skype flow")
[[nodiscard]] TunnelContentionResult run_tunnel_contention(
    const ScenarioSpec& spec, ScenarioCache* cache = nullptr);

}  // namespace sprout

#include "runner/shard.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/table.h"

namespace sprout {

std::uint64_t sweep_fingerprint(const SweepSpec& spec) {
  std::uint64_t h = kFnv1aOffsetBasis;
  h = fnv1a_u64(h, spec.cells.size());
  for (const ScenarioSpec& cell : spec.cells) {
    h = fnv1a_u64(h, scenario_fingerprint(cell));
  }
  h = fnv1a_u64(h, spec.base_seed.has_value() ? 1 : 0);
  if (spec.base_seed.has_value()) h = fnv1a_u64(h, *spec.base_seed);
  return h;
}

std::vector<std::size_t> shard_cell_indices(std::size_t total_cells,
                                            int shard_index, int shard_count) {
  if (shard_count < 1) {
    throw std::invalid_argument("shard count must be >= 1, got " +
                                std::to_string(shard_count));
  }
  if (shard_index < 0 || shard_index >= shard_count) {
    throw std::invalid_argument(
        "shard index " + std::to_string(shard_index) + " outside [0, " +
        std::to_string(shard_count) + ")");
  }
  std::vector<std::size_t> indices;
  for (std::size_t i = static_cast<std::size_t>(shard_index); i < total_cells;
       i += static_cast<std::size_t>(shard_count)) {
    indices.push_back(i);
  }
  return indices;
}

SweepResult run_sweep(const SweepSpec& spec, int threads) {
  SweepOptions options;
  options.threads = threads;
  options.base_seed = spec.base_seed;
  SweepRunner runner(options);

  SweepResult r;
  r.fingerprint = sweep_fingerprint(spec);
  r.cell_fingerprints.reserve(spec.cells.size());
  for (const ScenarioSpec& cell : spec.cells) {
    r.cell_fingerprints.push_back(scenario_fingerprint(cell));
  }
  r.cells = runner.run(spec.cells);
  return r;
}

ShardResult run_shard(const SweepSpec& spec,
                      std::vector<std::size_t> cell_indices, int threads) {
  std::vector<bool> seen(spec.cells.size(), false);
  std::vector<ScenarioSpec> slice;
  slice.reserve(cell_indices.size());
  for (const std::size_t i : cell_indices) {
    if (i >= spec.cells.size()) {
      throw std::invalid_argument("shard cell index " + std::to_string(i) +
                                  " outside a " +
                                  std::to_string(spec.cells.size()) +
                                  "-cell grid");
    }
    if (seen[i]) {
      throw std::invalid_argument("shard cell index " + std::to_string(i) +
                                  " listed twice");
    }
    seen[i] = true;
    slice.push_back(spec.cells[i]);
  }

  SweepOptions options;
  options.threads = threads;
  options.base_seed = spec.base_seed;
  SweepRunner runner(options);

  ShardResult shard;
  shard.sweep_fingerprint = sweep_fingerprint(spec);
  shard.total_cells = spec.cells.size();
  shard.cell_fingerprints.reserve(slice.size());
  for (const ScenarioSpec& cell : slice) {
    shard.cell_fingerprints.push_back(scenario_fingerprint(cell));
  }
  shard.cells = runner.run(slice);
  shard.cell_indices = std::move(cell_indices);
  return shard;
}

SweepResult merge_shards(const std::vector<ShardResult>& shards) {
  if (shards.empty()) {
    throw std::runtime_error("merge of zero shards");
  }
  const std::uint64_t fingerprint = shards.front().sweep_fingerprint;
  const std::size_t total = shards.front().total_cells;
  // Shards cut from one grid by different partition strategies cannot
  // form a clean partition (round-robin's shard 1/3 and LPT's shard 2/3
  // overlap and orphan cells in data-dependent ways); reject the mix by
  // its recorded strategies instead of surfacing a baffling
  // collision/coverage error below.  Unrecorded partitions ("") are
  // exempt: explicit --cells runs and pre-split shard files carry no
  // strategy to disagree about.
  const std::string* strategy = nullptr;
  for (const ShardResult& s : shards) {
    if (s.partition.empty() || s.partition == "explicit") continue;
    if (strategy != nullptr && s.partition != *strategy) {
      throw std::runtime_error(
          "shards of one grid mix partition strategies (" + *strategy +
          " vs " + s.partition + "): re-cut every shard with one strategy");
    }
    strategy = &s.partition;
  }
  for (const ShardResult& s : shards) {
    if (s.sweep_fingerprint != fingerprint) {
      throw std::runtime_error(
          "shard sweep fingerprints disagree (" +
          std::to_string(fingerprint) + " vs " +
          std::to_string(s.sweep_fingerprint) +
          "): the shards were not cut from the same grid");
    }
    if (s.total_cells != total) {
      throw std::runtime_error("shard cell totals disagree (" +
                               std::to_string(total) + " vs " +
                               std::to_string(s.total_cells) + ")");
    }
    if (s.cell_indices.size() != s.cells.size() ||
        s.cell_indices.size() != s.cell_fingerprints.size()) {
      throw std::runtime_error("shard is internally inconsistent: " +
                               std::to_string(s.cell_indices.size()) +
                               " indices, " +
                               std::to_string(s.cell_fingerprints.size()) +
                               " fingerprints, " +
                               std::to_string(s.cells.size()) + " results");
    }
  }

  SweepResult merged;
  merged.fingerprint = fingerprint;
  merged.cell_fingerprints.resize(total);
  merged.cells.resize(total);
  std::vector<bool> covered(total, false);
  for (const ShardResult& s : shards) {
    for (std::size_t k = 0; k < s.cell_indices.size(); ++k) {
      const std::size_t i = s.cell_indices[k];
      if (i >= total) {
        throw std::runtime_error("shard covers cell " + std::to_string(i) +
                                 ", but the grid has only " +
                                 std::to_string(total) + " cells");
      }
      if (covered[i]) {
        throw std::runtime_error("cell " + std::to_string(i) +
                                 " is covered by more than one shard");
      }
      covered[i] = true;
      merged.cell_fingerprints[i] = s.cell_fingerprints[k];
      merged.cells[i] = s.cells[k];
    }
  }
  for (std::size_t i = 0; i < total; ++i) {
    if (!covered[i]) {
      throw std::runtime_error("cell " + std::to_string(i) +
                               " is covered by no shard");
    }
  }
  return merged;
}

void verify_sweep_result(const SweepResult& merged, const SweepSpec& spec) {
  const std::uint64_t expected = sweep_fingerprint(spec);
  if (merged.fingerprint != expected) {
    throw std::runtime_error(
        "sweep fingerprint mismatch: result claims " +
        std::to_string(merged.fingerprint) + ", grid derives " +
        std::to_string(expected));
  }
  if (merged.cells.size() != spec.cells.size() ||
      merged.cell_fingerprints.size() != spec.cells.size()) {
    throw std::runtime_error("sweep result has " +
                             std::to_string(merged.cells.size()) +
                             " cells; the grid has " +
                             std::to_string(spec.cells.size()));
  }
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    if (merged.cell_fingerprints[i] != scenario_fingerprint(spec.cells[i])) {
      throw std::runtime_error("cell " + std::to_string(i) +
                               " fingerprint mismatch: the result was not "
                               "produced from this grid's cell");
    }
  }
}

// --- JSON ---------------------------------------------------------------

namespace {

constexpr const char* kShardSchema = "sprout-sweep-shard-v1";
constexpr const char* kSweepSchema = "sprout-sweep-v1";

// Doubles round-trip exactly: 17 significant digits is enough for any
// IEEE-754 double, and strtod (the parser's reader) is correctly rounded.
// JSON has no NaN/inf, so non-finite values become tagged strings.
void json_double(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "\"nan\"";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "\"inf\"" : "\"-inf\"");
  } else {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    os << tmp.str();
  }
}

double read_double(const JsonValue& v) {
  if (v.kind() == JsonValue::Kind::kString) {
    const std::string& s = v.as_string();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
    throw std::runtime_error("JSON: non-numeric double value \"" + s + "\"");
  }
  return v.as_number();
}

// u64 fingerprints exceed a double's 53-bit integer range, so they travel
// as decimal strings.
void json_u64(std::ostream& os, std::uint64_t v) {
  os << '"' << v << '"';
}

std::uint64_t read_u64(const JsonValue& v) {
  const std::string& s = v.as_string();
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error("JSON: malformed unsigned integer \"" + s +
                             "\"");
  }
  try {
    return std::stoull(s);
  } catch (const std::out_of_range&) {
    throw std::runtime_error("JSON: unsigned integer overflow in \"" + s +
                             "\"");
  }
}

// Counters (bytes, packets, drops) travel as plain JSON numbers, which a
// double represents exactly up to 2^53 — ~9 PB of delivered bytes, far
// above any simulable run.  Values past the bound would round silently in
// the parse, so reject them loudly instead.
std::int64_t read_i64(const JsonValue& v) {
  constexpr double kExactLimit = 9007199254740992.0;  // 2^53
  const double d = v.as_number();
  if (d > kExactLimit || d < -kExactLimit) {
    throw std::runtime_error(
        "JSON: integer counter exceeds the 2^53 exact range of a double");
  }
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) {
    throw std::runtime_error("JSON: expected an integer, got a fraction");
  }
  return i;
}

void write_series(std::ostream& os, const std::vector<SeriesPoint>& series) {
  os << '[';
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) os << ',';
    const SeriesPoint& p = series[i];
    os << '[';
    json_double(os, p.time_s);
    os << ',';
    json_double(os, p.throughput_kbps);
    os << ',';
    json_double(os, p.max_delay_ms);
    os << ',';
    json_double(os, p.mean_delay_ms);
    os << ']';
  }
  os << ']';
}

std::vector<SeriesPoint> read_series(const JsonValue& v) {
  std::vector<SeriesPoint> series;
  series.reserve(v.as_array().size());
  for (const JsonValue& e : v.as_array()) {
    const auto& tuple = e.as_array();
    if (tuple.size() != 4) {
      throw std::runtime_error("JSON: series point is not a 4-tuple");
    }
    SeriesPoint p;
    p.time_s = read_double(tuple[0]);
    p.throughput_kbps = read_double(tuple[1]);
    p.max_delay_ms = read_double(tuple[2]);
    p.mean_delay_ms = read_double(tuple[3]);
    series.push_back(p);
  }
  return series;
}

// Histograms travel as geometry + sparse [bin, count] pairs: a tower
// user's delays cluster in a handful of bins out of thousands, so the
// dense count vector would be almost all zeros.  Written only when the
// histogram is configured, so every pre-histogram result file — and every
// non-tower result today — stays byte-stable.
void write_hist(std::ostream& os, const DelayHistogram& h) {
  os << "{\"bin_ms\": ";
  json_double(os, h.bin_width_ms());
  os << ", \"max_ms\": ";
  json_double(os, h.max_ms());
  os << ", \"sum_ms\": ";
  json_double(os, h.sum_ms());
  os << ", \"counts\": [";
  bool first = true;
  const auto& counts = h.counts();
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '[' << b << ',' << counts[b] << ']';
  }
  os << "]}";
}

DelayHistogram read_hist(const JsonValue& v) {
  const double bin_ms = read_double(v.at("bin_ms"));
  const double max_ms = read_double(v.at("max_ms"));
  const double sum_ms = read_double(v.at("sum_ms"));
  if (bin_ms <= 0.0 || max_ms < bin_ms) {
    throw std::runtime_error("JSON: malformed histogram geometry");
  }
  // The writer's max_ms is always an exact bin multiple (the histogram
  // ctor rounds it up), so the bin count round-trips through llround.
  const auto num_bins =
      static_cast<std::size_t>(std::llround(max_ms / bin_ms));
  std::vector<std::int64_t> counts(num_bins + 1, 0);
  for (const JsonValue& e : v.at("counts").as_array()) {
    const auto& pair = e.as_array();
    if (pair.size() != 2) {
      throw std::runtime_error("JSON: histogram count is not a [bin, n] pair");
    }
    const std::int64_t b = read_i64(pair[0]);
    const std::int64_t n = read_i64(pair[1]);
    if (b < 0 || static_cast<std::size_t>(b) >= counts.size() || n < 0) {
      throw std::runtime_error("JSON: histogram bin out of range");
    }
    counts[static_cast<std::size_t>(b)] = n;
  }
  return DelayHistogram::from_parts(bin_ms, max_ms, sum_ms,
                                    std::move(counts));
}

// Flight-recorder timelines travel as geometry + flat 9-tuples
// [time_s, forecast_kbps, capacity_kbps, throughput_kbps,
//  queue_max_packets, queue_max_bytes, drops, mean_delay_ms, max_delay_ms].
// Written only when configured (record_timeline), so timeline-off results
// stay byte-stable; the tuples are arrays, never objects, so the timeline
// value contains no nested braces and timeline_report strip-timeline can
// erase it textually exactly as obs_report strip-runtime does.
void write_timeline(std::ostream& os, const FlowTimeline& t) {
  os << "{\"bin_s\": ";
  json_double(os, t.bin_s);
  os << ", \"from_s\": ";
  json_double(os, t.from_s);
  os << ", \"points\": [";
  for (std::size_t i = 0; i < t.points.size(); ++i) {
    const TimelinePoint& p = t.points[i];
    if (i > 0) os << ", ";
    os << '[';
    json_double(os, p.time_s);
    os << ", ";
    json_double(os, p.forecast_kbps);
    os << ", ";
    json_double(os, p.capacity_kbps);
    os << ", ";
    json_double(os, p.throughput_kbps);
    os << ", " << p.queue_max_packets << ", " << p.queue_max_bytes << ", "
       << p.drops << ", ";
    json_double(os, p.mean_delay_ms);
    os << ", ";
    json_double(os, p.max_delay_ms);
    os << ']';
  }
  os << "]}";
}

FlowTimeline read_timeline(const JsonValue& v) {
  FlowTimeline t;
  t.bin_s = read_double(v.at("bin_s"));
  t.from_s = read_double(v.at("from_s"));
  if (!(t.bin_s > 0.0)) {
    throw std::runtime_error("JSON: malformed timeline geometry");
  }
  for (const JsonValue& e : v.at("points").as_array()) {
    const auto& tuple = e.as_array();
    if (tuple.size() != 9) {
      throw std::runtime_error("JSON: timeline point is not a 9-tuple");
    }
    TimelinePoint p;
    p.time_s = read_double(tuple[0]);
    p.forecast_kbps = read_double(tuple[1]);
    p.capacity_kbps = read_double(tuple[2]);
    p.throughput_kbps = read_double(tuple[3]);
    p.queue_max_packets = read_i64(tuple[4]);
    p.queue_max_bytes = read_i64(tuple[5]);
    p.drops = read_i64(tuple[6]);
    p.mean_delay_ms = read_double(tuple[7]);
    p.max_delay_ms = read_double(tuple[8]);
    t.points.push_back(p);
  }
  return t;
}

void write_flow(std::ostream& os, const FlowResult& f) {
  os << "{\"label\": ";
  write_json_string(os, f.label);
  os << ", \"scheme\": ";
  write_json_string(os, to_string(f.scheme));
  os << ", \"active_from_s\": ";
  json_double(os, f.active_from_s);
  os << ", \"active_to_s\": ";
  json_double(os, f.active_to_s);
  os << ", \"throughput_kbps\": ";
  json_double(os, f.throughput_kbps);
  os << ", \"delay95_ms\": ";
  json_double(os, f.delay95_ms);
  os << ", \"mean_delay_ms\": ";
  json_double(os, f.mean_delay_ms);
  os << ", \"coactive_throughput_kbps\": ";
  json_double(os, f.coactive_throughput_kbps);
  os << ", \"capacity_share\": ";
  json_double(os, f.capacity_share);
  os << ", \"delivered_bytes\": " << f.delivered_bytes;
  if (f.delay_hist.configured()) {
    os << ", \"delay_hist\": ";
    write_hist(os, f.delay_hist);
  }
  if (f.timeline.configured()) {
    os << ", \"timeline\": ";
    write_timeline(os, f.timeline);
  }
  os << ", \"series\": ";
  write_series(os, f.series);
  os << '}';
}

FlowResult read_flow(const JsonValue& v) {
  FlowResult f;
  f.label = v.at("label").as_string();
  const std::string& scheme = v.at("scheme").as_string();
  const std::optional<SchemeId> id = scheme_from_name(scheme);
  if (!id.has_value()) {
    throw std::runtime_error("JSON: unknown scheme \"" + scheme + "\"");
  }
  f.scheme = *id;
  f.active_from_s = read_double(v.at("active_from_s"));
  f.active_to_s = read_double(v.at("active_to_s"));
  f.throughput_kbps = read_double(v.at("throughput_kbps"));
  f.delay95_ms = read_double(v.at("delay95_ms"));
  f.mean_delay_ms = read_double(v.at("mean_delay_ms"));
  f.coactive_throughput_kbps = read_double(v.at("coactive_throughput_kbps"));
  f.capacity_share = read_double(v.at("capacity_share"));
  f.delivered_bytes = read_i64(v.at("delivered_bytes"));
  if (v.has("delay_hist")) f.delay_hist = read_hist(v.at("delay_hist"));
  if (v.has("timeline")) f.timeline = read_timeline(v.at("timeline"));
  f.series = read_series(v.at("series"));
  return f;
}

void write_result(std::ostream& os, const ScenarioResult& r) {
  os << "{\"flows\": [";
  for (std::size_t i = 0; i < r.flows.size(); ++i) {
    if (i > 0) os << ", ";
    write_flow(os, r.flows[i]);
  }
  os << "], \"capacity_kbps\": ";
  json_double(os, r.capacity_kbps);
  os << ", \"aggregate_throughput_kbps\": ";
  json_double(os, r.aggregate_throughput_kbps);
  os << ", \"aggregate_utilization\": ";
  json_double(os, r.aggregate_utilization);
  os << ", \"jain_index\": ";
  json_double(os, r.jain_index);
  os << ", \"coactive_from_s\": ";
  json_double(os, r.coactive_from_s);
  os << ", \"coactive_to_s\": ";
  json_double(os, r.coactive_to_s);
  os << ", \"coactive_capacity_kbps\": ";
  json_double(os, r.coactive_capacity_kbps);
  os << ", \"max_delay95_ms\": ";
  json_double(os, r.max_delay95_ms);
  os << ", \"omniscient_delay95_ms\": ";
  json_double(os, r.omniscient_delay95_ms);
  os << ", \"packets_delivered\": " << r.packets_delivered;
  os << ", \"link_drops\": " << r.link_drops;
  if (r.population_delay_hist.configured()) {
    os << ", \"population_delay_hist\": ";
    write_hist(os, r.population_delay_hist);
  }
  if (r.runtime.recorded) {
    // Execution telemetry, present only on orchestrator --metrics-out
    // runs: fingerprints hash specs so this never perturbs them, and
    // obs_report strip-runtime removes it for byte-diffs against
    // untelemetered runs.
    os << ", \"runtime\": {\"wall_s\": ";
    json_double(os, r.runtime.wall_s);
    os << ", \"peak_rss_bytes\": " << r.runtime.peak_rss_bytes
       << ", \"attempt\": " << r.runtime.attempt << '}';
  }
  os << ", \"capacity_series\": ";
  write_series(os, r.capacity_series);
  os << '}';
}

ScenarioResult read_result(const JsonValue& v) {
  ScenarioResult r;
  for (const JsonValue& f : v.at("flows").as_array()) {
    r.flows.push_back(read_flow(f));
  }
  r.capacity_kbps = read_double(v.at("capacity_kbps"));
  r.aggregate_throughput_kbps =
      read_double(v.at("aggregate_throughput_kbps"));
  r.aggregate_utilization = read_double(v.at("aggregate_utilization"));
  r.jain_index = read_double(v.at("jain_index"));
  r.coactive_from_s = read_double(v.at("coactive_from_s"));
  r.coactive_to_s = read_double(v.at("coactive_to_s"));
  r.coactive_capacity_kbps = read_double(v.at("coactive_capacity_kbps"));
  r.max_delay95_ms = read_double(v.at("max_delay95_ms"));
  r.omniscient_delay95_ms = read_double(v.at("omniscient_delay95_ms"));
  r.packets_delivered = read_i64(v.at("packets_delivered"));
  r.link_drops = read_i64(v.at("link_drops"));
  if (v.has("population_delay_hist")) {
    r.population_delay_hist = read_hist(v.at("population_delay_hist"));
  }
  if (v.has("runtime")) {
    const JsonValue& rt = v.at("runtime");
    r.runtime.recorded = true;
    r.runtime.wall_s = read_double(rt.at("wall_s"));
    r.runtime.peak_rss_bytes = read_i64(rt.at("peak_rss_bytes"));
    r.runtime.attempt = static_cast<int>(read_i64(rt.at("attempt")));
  }
  r.capacity_series = read_series(v.at("capacity_series"));
  return r;
}

void write_cell(std::ostream& os, std::size_t index, std::uint64_t fingerprint,
                const ScenarioResult& result) {
  os << "    {\"index\": " << index << ", \"fingerprint\": ";
  json_u64(os, fingerprint);
  os << ", \"result\": ";
  write_result(os, result);
  os << '}';
}

struct Cell {
  std::size_t index;
  std::uint64_t fingerprint;
  ScenarioResult result;
};

Cell read_cell(const JsonValue& v) {
  Cell c;
  const std::int64_t index = read_i64(v.at("index"));
  if (index < 0) throw std::runtime_error("JSON: negative cell index");
  c.index = static_cast<std::size_t>(index);
  c.fingerprint = read_u64(v.at("fingerprint"));
  c.result = read_result(v.at("result"));
  return c;
}

void check_schema(const JsonValue& doc, const char* expected) {
  const std::string& schema = doc.at("schema").as_string();
  if (schema != expected) {
    throw std::runtime_error("JSON: schema \"" + schema + "\", expected \"" +
                             expected + "\"");
  }
}

}  // namespace

void write_scenario_result_json(std::ostream& os, const ScenarioResult& r) {
  write_result(os, r);
}

ScenarioResult scenario_result_from_json(const JsonValue& v) {
  return read_result(v);
}

void write_shard_json(std::ostream& os, const ShardResult& shard) {
  os << "{\n  \"schema\": \"" << kShardSchema << "\",\n"
     << "  \"sweep_fingerprint\": ";
  json_u64(os, shard.sweep_fingerprint);
  os << ",\n  \"total_cells\": " << shard.total_cells;
  // Written only when recorded, so pre-split shard files and files from
  // callers that never set a strategy stay byte-stable.
  if (!shard.partition.empty()) {
    os << ",\n  \"partition\": ";
    write_json_string(os, shard.partition);
  }
  os << ",\n  \"cells\": [\n";
  for (std::size_t k = 0; k < shard.cell_indices.size(); ++k) {
    write_cell(os, shard.cell_indices[k], shard.cell_fingerprints[k],
               shard.cells[k]);
    os << (k + 1 < shard.cell_indices.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

ShardResult read_shard_json(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  check_schema(doc, kShardSchema);
  ShardResult shard;
  shard.sweep_fingerprint = read_u64(doc.at("sweep_fingerprint"));
  const std::int64_t total = read_i64(doc.at("total_cells"));
  if (total < 0) throw std::runtime_error("JSON: negative cell total");
  shard.total_cells = static_cast<std::size_t>(total);
  if (doc.has("partition")) {
    shard.partition = doc.at("partition").as_string();
  }
  for (const JsonValue& v : doc.at("cells").as_array()) {
    Cell c = read_cell(v);
    shard.cell_indices.push_back(c.index);
    shard.cell_fingerprints.push_back(c.fingerprint);
    shard.cells.push_back(std::move(c.result));
  }
  return shard;
}

void write_sweep_json(std::ostream& os, const SweepResult& sweep) {
  os << "{\n  \"schema\": \"" << kSweepSchema << "\",\n"
     << "  \"sweep_fingerprint\": ";
  json_u64(os, sweep.fingerprint);
  os << ",\n  \"total_cells\": " << sweep.cells.size()
     << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    write_cell(os, i, sweep.cell_fingerprints[i], sweep.cells[i]);
    os << (i + 1 < sweep.cells.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

SweepResult read_sweep_json(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  check_schema(doc, kSweepSchema);
  SweepResult sweep;
  sweep.fingerprint = read_u64(doc.at("sweep_fingerprint"));
  const std::int64_t total = read_i64(doc.at("total_cells"));
  const auto& cells = doc.at("cells").as_array();
  if (total < 0 || static_cast<std::size_t>(total) != cells.size()) {
    throw std::runtime_error("JSON: sweep cell total disagrees with its "
                             "cell list");
  }
  sweep.cell_fingerprints.resize(cells.size());
  sweep.cells.resize(cells.size());
  std::vector<bool> covered(cells.size(), false);
  for (const JsonValue& v : cells) {
    Cell c = read_cell(v);
    if (c.index >= cells.size() || covered[c.index]) {
      throw std::runtime_error("JSON: sweep cell index " +
                               std::to_string(c.index) +
                               " out of range or repeated");
    }
    covered[c.index] = true;
    sweep.cell_fingerprints[c.index] = c.fingerprint;
    sweep.cells[c.index] = std::move(c.result);
  }
  return sweep;
}

}  // namespace sprout

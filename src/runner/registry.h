// The self-registering scheme registry.
//
// Every transport the harness can evaluate registers a factory plus
// metadata here (registry.cc), keyed by SchemeId.  The scenario engine
// asks the registry to wire each flow, so adding a scheme means adding ONE
// registration block — the experiment core never changes.
//
// A flow factory receives a FlowContext describing where its packets go
// and returns a SchemeFlow: an owned bundle of endpoints that knows which
// sinks receive the flow's data and feedback at each end and how to start
// its clocks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/params.h"
#include "metrics/flow_metrics.h"
#include "runner/schemes.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/units.h"

namespace sprout {

class TickEvolveBatcher;

// When set on a FlowContext, the flow's MeasuredSink runs FlowMetrics in
// streaming mode: per-packet delays fold into a fixed-bin histogram over
// [from, to) instead of a retained delivery log.  Tower scenarios set this
// so a thousand flows cost a thousand histograms, not a thousand packet
// logs.
struct StreamingMetricsConfig {
  Duration hist_bin{};
  Duration hist_max{};
  TimePoint from{};
  TimePoint to{};
};

// Everything a scheme needs to wire one flow into a running scenario.
struct FlowContext {
  Simulator& sim;
  SproutParams sprout_params;   // scenario confidence already applied
  std::int64_t flow_id = 1;     // demux key on both links
  int flow_index = 0;           // 0-based; staggers clock phases in fleets
  PacketSink& forward_link;     // ingress carrying this flow's data
  PacketSink& reverse_link;     // ingress carrying feedback/acks
  const Trace& forward_trace;   // ground truth (omniscient baseline scheme)
  Duration propagation_delay;
  Duration run_time;
  // Scenario-wide cross-flow evolution batcher (core/tick_batcher.h); null
  // when the scenario runs without one.  Sprout-family flows register their
  // endpoints so same-instant Bayes-filter evolutions merge.
  TickEvolveBatcher* evolve_batcher = nullptr;
  // Non-null => the flow's measured sink aggregates streaming metrics
  // instead of retaining delivery records (tower scenarios).
  const StreamingMetricsConfig* streaming_metrics = nullptr;
  // Non-null => the flow's measured sink ALSO maintains a streaming delay
  // histogram alongside its retained records (non-streaming topologies;
  // ignored when streaming_metrics is set, which already configures one).
  const StreamingMetricsConfig* delay_histogram = nullptr;
  // Non-null => the flow records a timeline (metrics/recorder.h): the
  // measured sink feeds deliveries and Sprout-family receivers feed their
  // forecasts.  Scenario-owned; must outlive the flow.
  FlowTimelineRecorder* timeline = nullptr;
};

// Builds the flow's measured receiver sink, honouring
// FlowContext::streaming_metrics.  Every scheme's factory should construct
// its recorder through this helper so streaming mode applies uniformly.
[[nodiscard]] std::unique_ptr<MeasuredSink> make_measured(
    const FlowContext& ctx, PacketSink* next);

// An instantiated flow: owns its endpoints and metrics for one scenario.
class SchemeFlow {
 public:
  virtual ~SchemeFlow() = default;

  // Sink that must receive this flow's packets leaving the FORWARD link
  // (the measured receiver side).
  [[nodiscard]] virtual PacketSink& data_egress() = 0;

  // Sink that must receive this flow's packets leaving the REVERSE link
  // (feedback arriving back at the sender); null if the scheme sends none.
  [[nodiscard]] virtual PacketSink* feedback_egress() = 0;

  // Starts the flow's clocks.  Called after both links are routed.
  virtual void start() = 0;

  // §5.1 delivery records of this flow.
  [[nodiscard]] virtual const FlowMetrics& metrics() const = 0;
};

// Registry metadata + factory for one scheme.
struct SchemeInfo {
  SchemeId id = SchemeId::kSprout;
  std::string name;  // == to_string(id)
  // Whether the scheme is meaningful with N flows commingled in one queue.
  bool shared_queue_capable = true;
  // In-network queue policy the scheme requests on BOTH link directions
  // (Cubic-CoDel requests kCoDel, Cubic-PIE kPie); kAuto for schemes that
  // run over whatever the link provides.  The scenario engine reconciles
  // these requests with ScenarioSpec::link_aqm and builds the policies
  // itself (make_aqm_policy in scenario.cc).
  LinkAqm link_aqm = LinkAqm::kAuto;
  // Builds one flow.  Required.
  std::function<std::unique_ptr<SchemeFlow>(const FlowContext&)> make_flow;
};

class SchemeRegistry {
 public:
  // The process-wide registry, populated by static registrars in
  // registry.cc before main() runs.
  [[nodiscard]] static SchemeRegistry& instance();

  void register_scheme(SchemeInfo info);

  // Lookup; throws std::invalid_argument for an unregistered id.
  [[nodiscard]] const SchemeInfo& info(SchemeId id) const;
  // Lookup; nullptr for an unregistered id.
  [[nodiscard]] const SchemeInfo* find(SchemeId id) const;

  // All registered ids, in registration order.
  [[nodiscard]] std::vector<SchemeId> registered() const;

 private:
  SchemeRegistry() = default;
  std::vector<SchemeInfo> schemes_;  // registration order, small N
};

}  // namespace sprout

// Fault-tolerant sweep orchestration: a coordinator that forks workers,
// hands out cells by work-stealing, and checkpoints every completed cell
// to an append-only journal so nothing is ever computed twice.
//
// `sweep_shard` (runner/shard.h) distributes a grid by cutting it into
// static slices up front; a worker that dies takes its whole slice's
// progress with it, and a killed job recomputes everything on restart.
// The orchestrator closes both holes:
//
//   * Work-stealing dispatch.  Pending cells sit in one longest-first
//     queue (descending estimated_cost, ties by index); an idle worker
//     steals the most expensive remaining cell.  On lumpy grids — a tower
//     cell next to a pile of single-flow cells — this beats any static
//     LPT cut, because no worker is ever idle while cells remain.
//   * Append-only journals.  Each worker slot streams completed cells as
//     fingerprint-stamped records into `shard_<i>.journal.jsonl`.  A
//     `kill -9` loses at most the record being written; restarting the
//     same command scans the journals, truncates a half-written tail,
//     and resumes from the last completed cell.
//   * Retry with backoff + a poison list.  A cell whose worker crashes is
//     re-queued with doubling backoff; after `max_attempts` failures it
//     is quarantined and reported instead of sinking the sweep or being
//     re-queued forever.  A `cell_timeout_s` reclaims cells from hung
//     workers the same way (SIGKILL, then the crash path).
//
// The invariant of PR 3 carries over, byte for byte: per-cell seeds are
// content-derived, journal records reuse the exact per-cell result
// serialization of shard files (write_scenario_result_json), and journal
// replay reconstructs ShardResults the existing merge_shards path
// accepts.  So
//
//     orchestrated (killed + resumed) == sweep_shard merge == serial
//
// is enforced by the `orchestrate_roundtrip` ctest target and the CI
// `orchestrate-smoke` job, both of which SIGKILL workers mid-run and diff
// the resumed merge against the single-process file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runner/shard.h"

namespace sprout {

struct OrchestratorOptions {
  // Worker processes; 0 means std::thread::hardware_concurrency().  The
  // coordinator never forks more workers than there are cells to run.
  int workers = 0;
  // A cell is poisoned after this many failed attempts (>= 1).
  int max_attempts = 3;
  // Backoff before attempt k+1 of a failed cell: retry_backoff_s * 2^(k-1).
  double retry_backoff_s = 0.25;
  // Reclaim a cell from its worker after this many seconds (SIGKILL + the
  // ordinary crash/retry path); 0 disables the timeout.
  double cell_timeout_s = 0.0;
  // Directory holding the per-worker journals (created if missing).
  // Journals from a previous run of the SAME grid are resumed; journals
  // from a different grid are rejected loudly.
  std::string journal_dir;
  // Progress + ETA lines (completed/total, poison count, LPT-aware
  // remaining-makespan estimate) to `progress_out` (default std::cerr).
  // When progress_out is unset and stderr is a TTY, the line rewrites in
  // place (\r); otherwise sparse plain lines are emitted so CI logs do not
  // fill with carriage-return spam.
  bool progress = true;
  std::ostream* progress_out = nullptr;

  // --- observability ----------------------------------------------------
  // Stamp every journaled cell's result with a CellRuntime (wall seconds,
  // worker peak RSS, landing attempt).  The field rides the ordinary
  // result serialization — merge preserves it, fingerprints (which hash
  // specs) ignore it — and `obs_report strip-runtime` removes it for
  // byte-diffs against untelemetered runs.  Set by the CLI whenever
  // --metrics-out is given.
  bool record_runtime = false;
  // Streaming telemetry JSONL ("" = off): a header line, one "cell" event
  // per completed cell (index, worker slot, attempt, wall, RSS), "retry"/
  // "poison" events, throttled "progress" events, and a final "summary"
  // carrying the coordinator's obs-registry snapshot.
  std::string metrics_out;
  // Chrome-trace-event JSON ("" = off): one complete event per cell
  // occupying its worker slot's lane, instants for spawns/deaths/retries.
  // Wall-clock timestamps — schema-checked in CI, never byte-diffed.
  std::string trace_out;

  // --- fault injection, for tests and the CI smoke job only ------------
  // {index, n}: the worker _exit(70)s when dispatched cell `index` on its
  // first n attempts (n < 0: every attempt — the poison path).
  std::vector<std::pair<std::size_t, int>> crash_cells;
  // {index, n}: the worker hangs on cell `index` for its first n attempts
  // (n < 0: always) — exercises the cell_timeout_s reclaim.
  std::vector<std::pair<std::size_t, int>> hang_cells;
  // After this many completions in THIS invocation, SIGKILL every worker
  // and stop — simulates `kill -9` of the whole job mid-run.  0 disables.
  std::size_t halt_after_cells = 0;
};

// One quarantined cell: it crashed/hung its worker on every attempt.
struct PoisonedCell {
  std::size_t index = 0;
  int attempts = 0;
  std::string last_error;
};

struct OrchestrateOutcome {
  // True when every cell of the grid is journaled; `merged` then holds the
  // full sweep (verified against the grid) and serializes byte-identically
  // to a serial run_sweep of the same spec.
  bool complete = false;
  // True when halt_after_cells stopped the run (merged is not populated).
  bool halted = false;
  std::size_t resumed_cells = 0;   // recovered from pre-existing journals
  std::size_t executed_cells = 0;  // run (and journaled) by this invocation
  std::vector<PoisonedCell> poisoned;
  SweepResult merged;
};

// Runs `spec` to completion under the coordinator described above,
// resuming from any journals already in options.journal_dir.  Throws
// std::invalid_argument for bad options and std::runtime_error for
// unusable journals (foreign grid, duplicate coverage, corrupt records).
[[nodiscard]] OrchestrateOutcome orchestrate_sweep(
    const SweepSpec& spec, const OrchestratorOptions& options);

// --- journal files ------------------------------------------------------
//
// `shard_<id>.journal.jsonl`: line 1 is a header stamping the grid's
// content address, every further line is one completed cell:
//
//   {"schema": "sprout-journal-v1", "sweep_fingerprint": "...",
//    "total_cells": N, "journal": id}
//   {"index": 3, "fingerprint": "...", "result": { ...exact shard
//    per-cell result JSON... }}
//
// Records are append-only and self-delimiting (one line each), so the
// only damage a kill can do is a truncated final line.

struct JournalRecord {
  std::size_t index = 0;
  std::uint64_t fingerprint = 0;
  ScenarioResult result;
};

struct JournalScan {
  std::uint64_t sweep_fingerprint = 0;
  std::size_t total_cells = 0;
  int journal_id = 0;
  std::vector<JournalRecord> records;
  // Bytes of a half-written trailing record dropped by a recovery scan
  // (always 0 in strict mode, which throws instead).
  std::size_t dropped_bytes = 0;
};

// Parses one journal.  `label` prefixes error messages (usually the file
// name).  With allow_truncated_tail, a final line cut mid-record — the
// expected wound of a kill -9 — is dropped and counted in dropped_bytes;
// without it (the strict replay/merge path) the same wound throws.  A
// malformed line anywhere ELSE, a duplicate or out-of-range cell index,
// or a missing/foreign header always throws std::runtime_error.
[[nodiscard]] JournalScan read_journal(std::string_view text,
                                       const std::string& label,
                                       bool allow_truncated_tail);
[[nodiscard]] JournalScan read_journal_file(const std::string& path,
                                            bool allow_truncated_tail);

// Replays a scan into the ShardResult shape merge_shards accepts
// (partition = "orchestrated", cells sorted by grid index).
[[nodiscard]] ShardResult shard_from_journal(const JournalScan& scan);

// Journal paths in `dir` (shard_*.journal.jsonl), sorted by id; the name
// for a given worker slot.
[[nodiscard]] std::vector<std::string> list_journal_files(
    const std::string& dir);
[[nodiscard]] std::string journal_file_name(int journal_id);

void write_journal_header(std::ostream& os, const SweepSpec& spec,
                          int journal_id);
void write_journal_record(std::ostream& os, const JournalRecord& record);

}  // namespace sprout

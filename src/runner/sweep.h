// Deterministic parallel scenario sweeps.
//
// The paper's evaluation is a grid — schemes × links × loss rates ×
// confidence levels × seeds — of *independent* simulations.  SweepRunner
// executes such a grid on a thread pool and returns results in input
// order, bit-identical to running the same specs serially: every cell
// runs its own Simulator and RNGs, the only shared state is immutable
// caches (resolved traces here, forecaster CDF tables in
// core/forecaster.h), and nothing about a cell's execution depends on
// which thread picks it up.
//
// Per-cell seeds can be derived from a sweep-level base seed.  Derivation
// hashes the cell's CONTENT (scheme, link, topology, durations, ...), not
// its position, so reordering or extending the spec list never changes
// the seed — and therefore the result — any given cell gets.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "runner/scenario.h"

namespace sprout {

struct SweepOptions {
  // Worker threads; 0 means std::thread::hardware_concurrency().
  int threads = 0;
  // When set, every cell's seed is replaced by
  // derive_cell_seed(*base_seed, spec) before running.
  std::optional<std::uint64_t> base_seed;
};

// The one FNV-1a mixing step every content fingerprint chains — the
// cell fingerprint below and the grid fingerprint in shard.h both build
// on it, so the two addresses cannot drift apart independently.  Mixes
// the eight bytes of `v`, least-significant first.
inline constexpr std::uint64_t kFnv1aOffsetBasis = 1469598103934665603ull;
[[nodiscard]] constexpr std::uint64_t fnv1a_u64(std::uint64_t state,
                                                std::uint64_t v) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    state ^= (v >> (8 * i)) & 0xffu;
    state *= kPrime;
  }
  return state;
}

// Stable content fingerprint of a spec (FNV-1a over every field; inline
// traces are sampled).  Equal specs always collide; unequal specs almost
// never do, and a collision only means two cells share a seed.
[[nodiscard]] std::uint64_t scenario_fingerprint(const ScenarioSpec& spec);

// Order-independent per-cell seed: mixes the sweep's base seed with the
// cell's content fingerprint (including the spec's own seed field, so
// replicate cells that differ only in seed stay distinct).
[[nodiscard]] std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                                             const ScenarioSpec& spec);

// Dispatch order for a grid: cell indices sorted by descending
// estimated_cost (ties broken by input index, so the order is a pure
// function of the specs).  Starting the longest cells first keeps a 300 s
// cell from becoming the tail of the pool after all the 10 s cells have
// drained; results are unaffected — cells are independent and results are
// returned in input order regardless of execution order.
[[nodiscard]] std::vector<std::size_t> longest_first_order(
    const std::vector<ScenarioSpec>& specs);

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  // Runs every spec and returns results in input order.  Cells execute
  // concurrently (up to `threads` at a time) but the returned vector is
  // bit-identical to a serial run of the same specs.  If any cell throws,
  // the first failure (in input order) is rethrown after all cells finish.
  [[nodiscard]] std::vector<ScenarioResult> run(
      const std::vector<ScenarioSpec>& specs);

  // The shared trace cache (hit/miss counters for tests and benches).
  [[nodiscard]] const ScenarioCache& cache() const { return cache_; }

  [[nodiscard]] const SweepOptions& options() const { return options_; }

 private:
  SweepOptions options_;
  ScenarioCache cache_;
};

}  // namespace sprout

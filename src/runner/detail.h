// Internal seams of the scenario engine, shared with the tower runner
// (runner/tower.cc).  Not part of the public API: signatures here may
// change without notice.
#pragma once

#include <memory>
#include <vector>

#include "aqm/aqm.h"
#include "runner/registry.h"
#include "runner/scenario.h"
#include "util/rng.h"

namespace sprout::detail {

// Builds one direction's queue policy.  Called once per direction (or per
// tower user), in a fixed order, so stochastic policies (PIE) fork
// deterministic seeds; DropTail is the absence of a policy.
[[nodiscard]] std::unique_ptr<AqmPolicy> make_aqm_policy(LinkAqm aqm,
                                                         Rng& seeder);

// Reconciles the spec's explicit link policy with the policies the given
// schemes request (kAuto infers; contradictions are rejected).  See the
// definition in scenario.cc for the full rule.
[[nodiscard]] LinkAqm resolve_link_aqm(
    const ScenarioSpec& spec, const std::vector<const SchemeInfo*>& schemes);

// The §5.1-style measurement engine over registry-built flows; the tower
// runner lives in runner/tower.cc and is dispatched by run_scenario().
[[nodiscard]] ScenarioResult run_tower(const ScenarioSpec& spec);

}  // namespace sprout::detail

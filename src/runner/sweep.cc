#include "runner/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <exception>
#include <thread>

namespace sprout {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Fnv {
  std::uint64_t state = kFnv1aOffsetBasis;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state ^= p[i];
      state *= kFnvPrime;
    }
  }
  void u64(std::uint64_t v) { state = fnv1a_u64(state, v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

void hash_sprout_params(Fnv& h, const SproutParams& p) {
  h.i64(p.num_bins);
  h.f64(p.max_rate_pps);
  h.i64(p.tick.count());
  h.f64(p.sigma_pps_per_sqrt_s);
  h.f64(p.outage_escape_rate_per_s);
  h.i64(p.forecast_horizon_ticks);
  h.f64(p.confidence_percent);
  h.i64(p.max_count);
  h.u64(p.count_noise_in_forecast ? 1 : 0);
  h.i64(p.sender_lookahead_ticks);
  h.i64(p.throwaway_window.count());
  h.i64(p.assumed_propagation.count());
  h.i64(p.mtu);
  h.i64(p.heartbeat_bytes);
  // Fast-path knobs are hashed only when moved off their defaults, so every
  // fingerprint (and the content-derived seeds built from them) from before
  // the knobs existed stays stable.
  if (p.band_epsilon != 1e-12) h.f64(p.band_epsilon);
  if (p.dense_inference) h.u64(2);
}

void hash_flow_spec(Fnv& h, const FlowSpec& f) {
  h.u64(static_cast<std::uint64_t>(f.scheme));
  h.u64(f.sprout_params.has_value() ? 1 : 0);
  if (f.sprout_params.has_value()) hash_sprout_params(h, *f.sprout_params);
  h.i64(f.start.count());
  h.u64(f.stop.has_value() ? 1 : 0);
  if (f.stop.has_value()) h.i64(f.stop->count());
}

void hash_trace(Fnv& h, const Trace& t) {
  // Sampling keeps fingerprinting giant traces cheap; a collision between
  // distinct traces only means two cells derive the same seed, which is
  // harmless (seeds need determinism, not uniqueness).
  const auto& opp = t.opportunities();
  h.u64(opp.size());
  h.i64(t.duration().count());
  const std::size_t stride = opp.size() > 4096 ? opp.size() / 4096 : 1;
  for (std::size_t i = 0; i < opp.size(); i += stride) {
    h.i64(opp[i].time_since_epoch().count());
  }
}

}  // namespace

std::uint64_t scenario_fingerprint(const ScenarioSpec& spec) {
  Fnv h;
  if (spec.topology.kind == TopologySpec::Kind::kTower) {
    // Tower cells ignore spec.scheme, spec.link, the flow list, via_tunnel
    // and the series-capture knobs — every simulated input lives in the
    // TowerSpec — so only what the runner actually consumes is hashed.
    // Hashing ignored fields would make equivalent cells (same tower, any
    // leftover link config) derive different seeds.
    h.u64(static_cast<std::uint64_t>(spec.topology.kind));
    const TowerSpec& t = spec.topology.tower_spec;
    h.i64(t.num_users);
    h.f64(t.arrival_rate_per_s);
    h.f64(t.mean_session_s);
    h.i64(t.slot.count());
    h.i64(t.pf_window.count());
    // Canonical cache key, same discipline as kSynth links: enumerates
    // every SynthSpec field, so fingerprint coverage can't drift.
    h.str(synth_key(t.channel, spec.run_time));
    h.u64(t.mix.size());
    for (const UserMixEntry& e : t.mix) {
      h.u64(static_cast<std::uint64_t>(e.scheme));
      h.f64(e.weight);
    }
    h.i64(t.hist_bin.count());
    h.i64(t.hist_max.count());
    if (spec.link_aqm != LinkAqm::kAuto) {
      h.u64(static_cast<std::uint64_t>(spec.link_aqm));
    }
    h.i64(spec.run_time.count());
    h.i64(spec.warmup.count());
    h.i64(spec.propagation_delay_fwd.count());
    if (spec.propagation_delay_rev != spec.propagation_delay_fwd) {
      h.i64(spec.propagation_delay_rev.count());
    }
    h.f64(spec.loss_rate_fwd);
    if (spec.loss_rate_rev != spec.loss_rate_fwd) h.f64(spec.loss_rate_rev);
    h.f64(spec.sprout_confidence);
    h.u64(spec.seed);
    return h.state;
  }
  h.u64(static_cast<std::uint64_t>(spec.scheme));
  h.u64(static_cast<std::uint64_t>(spec.link.source));
  switch (spec.link.source) {
    case LinkSpec::Source::kPreset:
      h.str(spec.link.network);
      h.u64(static_cast<std::uint64_t>(spec.link.direction));
      break;
    case LinkSpec::Source::kTraces:
      hash_trace(h, spec.link.forward_trace);
      hash_trace(h, spec.link.reverse_trace);
      break;
    case LinkSpec::Source::kTraceFiles:
      h.str(spec.link.forward_path);
      h.str(spec.link.reverse_path);
      break;
    case LinkSpec::Source::kSynthetic:
      // Hash the canonical cache key so field coverage can't drift from
      // what the trace cache distinguishes.
      h.str(synthetic_link_key(spec.link.forward_process,
                               spec.link.forward_process_seed,
                               spec.run_time));
      h.str(synthetic_link_key(spec.link.reverse_process,
                               spec.link.reverse_process_seed,
                               spec.run_time));
      break;
    case LinkSpec::Source::kSynth:
      // Same discipline: the canonical key enumerates every SynthSpec
      // field, so fingerprints and the trace cache agree by construction.
      h.str(synth_key(spec.link.forward_synth, spec.run_time));
      h.str(synth_key(spec.link.reverse_synth, spec.run_time));
      break;
  }
  h.u64(static_cast<std::uint64_t>(spec.topology.kind));
  h.i64(spec.topology.num_flows);
  // Canonicalize before hashing: an explicit flow list where every entry
  // is the homogeneous default of the scenario's scheme SIMULATES
  // identically to the num_flows shorthand, so it must fingerprint (and
  // therefore derive seeds) identically too.  Only a list that actually
  // diverges from the shorthand is hashed.
  const auto is_default_flow = [&](const FlowSpec& f) {
    return f.scheme == spec.scheme && !f.sprout_params.has_value() &&
           f.start == Duration::zero() && !f.stop.has_value();
  };
  const bool homogeneous_list =
      std::all_of(spec.topology.flows.begin(), spec.topology.flows.end(),
                  is_default_flow);
  if (!homogeneous_list) {
    h.u64(spec.topology.flows.size());
    for (const FlowSpec& f : spec.topology.flows) hash_flow_spec(h, f);
  }
  h.u64(spec.topology.via_tunnel ? 1 : 0);
  // Canonical encoding again: kAuto is the field's "absent" state, and
  // hashing it for every pre-existing spec would have shifted every derived
  // seed when the field was introduced.  Only an explicit policy is hashed.
  if (spec.link_aqm != LinkAqm::kAuto) {
    h.u64(static_cast<std::uint64_t>(spec.link_aqm));
  }
  h.i64(spec.run_time.count());
  h.i64(spec.warmup.count());
  h.i64(spec.propagation_delay_fwd.count());
  // Mirror the loss split below: only an asymmetric propagation split is
  // hashed, so symmetric specs — the only kind that predates the split —
  // keep their fingerprints and content-derived seeds.
  if (spec.propagation_delay_rev != spec.propagation_delay_fwd) {
    h.i64(spec.propagation_delay_rev.count());
  }
  h.f64(spec.loss_rate_fwd);
  // Only an asymmetric split is hashed.  Symmetric specs — the only kind
  // that could exist before the loss_rate field split — keep their
  // pre-split fingerprints, so content-derived seeds (and golden results)
  // stay stable.
  if (spec.loss_rate_rev != spec.loss_rate_fwd) h.f64(spec.loss_rate_rev);
  h.f64(spec.sprout_confidence);
  h.u64(spec.seed);
  h.u64(spec.capture_series ? 1 : 0);
  h.i64(spec.series_bin.count());
  return h.state;
}

std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               const ScenarioSpec& spec) {
  // splitmix64 finalizer over (base ⊕ fingerprint): well-mixed, and a
  // pure function of sweep seed + cell content — never of cell position.
  std::uint64_t z = base_seed ^ scenario_fingerprint(spec);
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<std::size_t> longest_first_order(
    const std::vector<ScenarioSpec>& specs) {
  std::vector<std::size_t> order(specs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> cost(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    cost[i] = estimated_cost(specs[i]);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cost[a] > cost[b];
                   });
  return order;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

std::vector<ScenarioResult> SweepRunner::run(
    const std::vector<ScenarioSpec>& specs) {
  // Only reseeding needs a mutable copy (specs can carry large inline
  // traces; don't duplicate them for nothing).
  const std::vector<ScenarioSpec>* cells = &specs;
  std::vector<ScenarioSpec> reseeded;
  if (options_.base_seed.has_value()) {
    reseeded = specs;
    for (ScenarioSpec& spec : reseeded) {
      spec.seed = derive_cell_seed(*options_.base_seed, spec);
    }
    cells = &reseeded;
  }

  std::vector<ScenarioResult> results(cells->size());
  std::vector<std::exception_ptr> errors(cells->size());

  int threads = options_.threads > 0
                    ? options_.threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  threads = std::min<int>(threads, static_cast<int>(cells->size()));

  // Longest-first dispatch: workers claim cells in descending estimated
  // cost so an expensive cell never starts last and tail-blocks the pool.
  // Execution order cannot affect results (cells are independent; results
  // land at their input index), so this is purely a wall-clock lever.
  const std::vector<std::size_t> order = longest_first_order(*cells);
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t k = next.fetch_add(1); k < order.size();
         k = next.fetch_add(1)) {
      const std::size_t i = order[k];
      try {
        results[i] = run_scenario((*cells)[i], &cache_);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace sprout

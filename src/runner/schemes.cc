#include "runner/schemes.h"

namespace sprout {

std::string to_string(SchemeId id) {
  switch (id) {
    case SchemeId::kSprout: return "Sprout";
    case SchemeId::kSproutEwma: return "Sprout-EWMA";
    case SchemeId::kSkype: return "Skype";
    case SchemeId::kFacetime: return "Facetime";
    case SchemeId::kHangout: return "Hangout";
    case SchemeId::kCubic: return "Cubic";
    case SchemeId::kVegas: return "Vegas";
    case SchemeId::kCompound: return "Compound";
    case SchemeId::kLedbat: return "LEDBAT";
    case SchemeId::kCubicCodel: return "Cubic-CoDel";
    case SchemeId::kOmniscient: return "Omniscient";
    case SchemeId::kGcc: return "GCC (WebRTC)";
    case SchemeId::kFast: return "FAST";
    case SchemeId::kCubicPie: return "Cubic-PIE";
    case SchemeId::kSproutAdaptive: return "Sprout-Adaptive";
    case SchemeId::kSproutMmpp: return "Sprout-MMPP";
    case SchemeId::kSproutEmpirical: return "Sprout-Empirical";
    case SchemeId::kReno: return "NewReno";
  }
  return "unknown";
}

const std::vector<SchemeId>& all_scheme_ids() {
  static const std::vector<SchemeId> ids = {
      SchemeId::kSprout,         SchemeId::kSproutEwma,
      SchemeId::kSkype,          SchemeId::kFacetime,
      SchemeId::kHangout,        SchemeId::kCubic,
      SchemeId::kVegas,          SchemeId::kCompound,
      SchemeId::kLedbat,         SchemeId::kCubicCodel,
      SchemeId::kOmniscient,     SchemeId::kGcc,
      SchemeId::kFast,           SchemeId::kCubicPie,
      SchemeId::kSproutAdaptive, SchemeId::kSproutMmpp,
      SchemeId::kSproutEmpirical, SchemeId::kReno,
  };
  return ids;
}

std::optional<SchemeId> scheme_from_name(const std::string& name) {
  for (const SchemeId id : all_scheme_ids()) {
    if (to_string(id) == name) return id;
  }
  return std::nullopt;
}

std::string to_string(LinkAqm aqm) {
  switch (aqm) {
    case LinkAqm::kAuto: return "auto";
    case LinkAqm::kDropTail: return "DropTail";
    case LinkAqm::kCoDel: return "CoDel";
    case LinkAqm::kPie: return "PIE";
  }
  return "unknown";
}

const std::vector<SchemeId>& figure7_schemes() {
  static const std::vector<SchemeId> schemes = {
      SchemeId::kSprout,  SchemeId::kSproutEwma, SchemeId::kSkype,
      SchemeId::kFacetime, SchemeId::kHangout,   SchemeId::kCubic,
      SchemeId::kVegas,   SchemeId::kCompound,   SchemeId::kLedbat,
  };
  return schemes;
}

const std::vector<SchemeId>& table1_schemes() {
  static const std::vector<SchemeId> schemes = {
      SchemeId::kSkype,  SchemeId::kHangout,  SchemeId::kFacetime,
      SchemeId::kCompound, SchemeId::kVegas,  SchemeId::kLedbat,
      SchemeId::kCubic,  SchemeId::kCubicCodel,
  };
  return schemes;
}

const std::vector<SchemeId>& extension_schemes() {
  static const std::vector<SchemeId> schemes = {
      SchemeId::kGcc,
      SchemeId::kFast,
      SchemeId::kCubicPie,
  };
  return schemes;
}

const std::vector<SchemeId>& forecaster_schemes() {
  static const std::vector<SchemeId> schemes = {
      SchemeId::kSprout,          SchemeId::kSproutEwma,
      SchemeId::kSproutAdaptive,  SchemeId::kSproutMmpp,
      SchemeId::kSproutEmpirical,
  };
  return schemes;
}

const std::vector<SchemeId>& coexistence_schemes() {
  static const std::vector<SchemeId> schemes = {
      SchemeId::kCubic,
      SchemeId::kReno,
      SchemeId::kVegas,
      SchemeId::kGcc,
  };
  return schemes;
}

}  // namespace sprout

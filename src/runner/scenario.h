// The unified scenario engine.
//
// One ScenarioSpec describes everything the runner can simulate: which
// scheme, over which link (a named preset, caller-supplied traces, trace
// files on disk, or a synthetic Cox-process spec), in which topology (one
// flow on a dedicated queue, N flows commingled in one shared queue, or
// the §5.7 tunnel-contention scenario), for how long, under what loss and
// seed.  run_scenario() is the single entry point every bench, example and
// test builds on (the legacy per-topology views were deleted once their
// last in-repo callers moved here).
//
// Topology (data flowing in the link's forward direction):
//
//   sender endpoint(s) --> Cellsim(fwd trace) --> [demux+metrics] --> rcvr(s)
//        ^                                                             |
//        +------------ Cellsim(rev trace) <-- feedback/acks -----------+
//
// Both directions use the same network's traces (e.g. "Verizon LTE
// downlink" carries the data, "Verizon LTE uplink" the feedback), a 20 ms
// propagation delay each way (40 ms minimum RTT), and optional Bernoulli
// loss and AQM, exactly as in §4.2.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/params.h"
#include "metrics/histogram.h"
#include "metrics/recorder.h"
#include "metrics/timeseries.h"
#include "runner/schemes.h"
#include "synth/synth.h"
#include "trace/presets.h"
#include "trace/synthetic.h"
#include "trace/trace.h"
#include "util/units.h"

namespace sprout {

// Where the two directions' delivery traces come from.
struct LinkSpec {
  enum class Source {
    kPreset,     // one of the eight traced networks (trace/presets.h)
    kTraces,     // caller-supplied in-memory traces
    kTraceFiles, // mahimahi-format files, parsed (and cached) by the engine
    kSynthetic,  // generate from explicit Cox-process parameters
    kSynth,      // full channel-synthesis spec: base model + op chain
  };

  Source source = Source::kPreset;

  // kPreset: data direction; feedback uses the same network's twin.
  std::string network = "Verizon LTE";
  LinkDirection direction = LinkDirection::kDownlink;

  // kTraces.
  Trace forward_trace;
  Trace reverse_trace;

  // kTraceFiles.
  std::string forward_path;
  std::string reverse_path;

  // kSynthetic: per-direction process parameters and generator seeds.
  CellProcessParams forward_process;
  CellProcessParams reverse_process;
  std::uint64_t forward_process_seed = 1;
  std::uint64_t reverse_process_seed = 2;

  // kSynth: per-direction channel-synthesis specs (synth/synth.h) — a base
  // model or saved trace plus composable overlay/augmentation ops, each
  // with its own root seed.
  SynthSpec forward_synth;
  SynthSpec reverse_synth;

  [[nodiscard]] static LinkSpec preset(const LinkPreset& preset);
  [[nodiscard]] static LinkSpec preset(const std::string& network,
                                       LinkDirection direction);
  [[nodiscard]] static LinkSpec traces(Trace forward, Trace reverse);
  [[nodiscard]] static LinkSpec trace_files(std::string forward_path,
                                            std::string reverse_path);
  [[nodiscard]] static LinkSpec synthetic(CellProcessParams forward,
                                          CellProcessParams reverse,
                                          std::uint64_t forward_seed = 1,
                                          std::uint64_t reverse_seed = 2);
  [[nodiscard]] static LinkSpec synth(SynthSpec forward, SynthSpec reverse);

  // Human-readable link label ("Verizon LTE downlink", a file path, ...).
  [[nodiscard]] std::string name() const;
};

// One flow of a shared-queue topology.  The default FlowSpec inherits the
// scenario's scheme and Sprout parameters and is active for the whole run;
// heterogeneous topologies list one FlowSpec per flow, each with its own
// scheme, an optional full SproutParams override (ablation sweeps), and a
// staggered activity window for ramp-up / late-joiner dynamics.
struct FlowSpec {
  SchemeId scheme = SchemeId::kSprout;
  // Full per-flow Sprout parameter override.  When absent the flow uses
  // the scenario's defaults (SproutParams with spec.sprout_confidence).
  std::optional<SproutParams> sprout_params;
  // When the flow's clocks start, relative to the scenario origin.
  Duration start = Duration::zero();
  // When the flow leaves the network (its packets stop entering either
  // queue).  Absent = active until the end of the run.
  std::optional<Duration> stop;

  // Value-returning builders, safe to chain on temporaries:
  //   FlowSpec::of(SchemeId::kCubic).active(sec(60), sec(180))
  [[nodiscard]] static FlowSpec of(SchemeId scheme);
  [[nodiscard]] FlowSpec with_params(const SproutParams& params) const;
  [[nodiscard]] FlowSpec active(
      Duration start, std::optional<Duration> stop = std::nullopt) const;
};

// One entry of a tower's user mix: a scheme and its sampling weight.
// Each arriving user draws its scheme from the mix, weights normalized
// over the list (so {Cubic:3, Sprout:1} is 75% / 25%).
struct UserMixEntry {
  SchemeId scheme = SchemeId::kCubic;
  double weight = 1.0;
};

// A cell tower serving a churning population: N per-user downlink queues
// scheduled by the proportional-fair rule, each user's radio channel an
// independent synth-model rate process, users arriving under a Poisson
// process and departing after exponentially-distributed sessions.  Every
// random draw derives from the scenario seed, so tower sweeps stay
// bit-identical serial vs thread-pool vs process-sharded.
struct TowerSpec {
  // Users attached at t = 0 (ids 1..num_users).
  int num_users = 64;
  // Poisson arrival rate of NEW users after t = 0; 0 = closed population.
  double arrival_rate_per_s = 0.0;
  // Mean exponential session length; 0 = users stay until the end.
  double mean_session_s = 0.0;
  // PF scheduler slot (one user served per slot).
  Duration slot = msec(2);
  // EWMA horizon of the PF rule's per-user average-rate estimate.
  Duration pf_window = msec(1500);
  // Per-user channel process.  Must be a live model (brownian/markov) with
  // no op chain: the tower steps each user's process lazily as scheduled,
  // never materializing whole traces.  Each user's process forks its own
  // seed from channel.seed and the user id.
  SynthSpec channel;
  // Scheme mix sampled per arriving user; must be non-empty with positive
  // weights.
  std::vector<UserMixEntry> mix = {UserMixEntry{}};
  // Streaming delay-histogram geometry (per-user and population CDFs).
  Duration hist_bin = msec(5);
  Duration hist_max = sec(20);
};

// How many flows, and how they share the emulated queues.
struct TopologySpec {
  enum class Kind {
    kSingleFlow,        // one sender/receiver pair, dedicated queues
    kSharedQueue,       // flows commingled in ONE queue (§7, heterogeneous)
    kTunnelContention,  // §5.7: Cubic bulk + Skype call, direct or tunneled
    kTower,             // PF cell tower, per-user queues, Poisson churn
  };

  Kind kind = Kind::kSingleFlow;
  // kSharedQueue with an empty `flows` list: num_flows identical copies of
  // the scenario's scheme (the paper's §7 homogeneous shape).  A non-empty
  // `flows` list describes each flow explicitly and num_flows must equal
  // flows.size(); validate_topology() rejects any other combination as a
  // contradiction rather than silently preferring one field.
  int num_flows = 1;
  std::vector<FlowSpec> flows;
  bool via_tunnel = false;  // kTunnelContention
  // kTower.  The tower owns its own link model (the PF cell), scheme
  // choice (the mix) and metrics geometry, so a tower scenario ignores
  // ScenarioSpec::scheme / link / capture_series.
  TowerSpec tower_spec;

  [[nodiscard]] static TopologySpec single_flow();
  [[nodiscard]] static TopologySpec shared_queue(int num_flows);
  // Heterogeneous shared queue; throws std::invalid_argument for an empty
  // flow list.
  [[nodiscard]] static TopologySpec heterogeneous_queue(
      std::vector<FlowSpec> flows);
  [[nodiscard]] static TopologySpec tunnel_contention(bool via_tunnel);
  [[nodiscard]] static TopologySpec tower(TowerSpec spec);
};

// Validates a topology's internal consistency — the ONE place the
// num_flows-vs-flows precedence rule and the per-kind field constraints
// live.  Every builder above funnels through it, and run_scenario()
// re-checks hand-assembled specs.  Throws std::invalid_argument.
//
// The precedence rule: a non-empty `flows` list is authoritative for what
// each flow runs, and `num_flows` must equal flows.size().  Any other
// combination is a contradiction and is rejected, never silently resolved.
void validate_topology(const TopologySpec& topology);

// The one scenario description.  Defaults reproduce the paper's §5 setup:
// 300 s runs, the first minute skipped by all metrics, 20 ms propagation
// each way, no loss, the 95%-confidence forecast.
struct ScenarioSpec {
  SchemeId scheme = SchemeId::kSprout;  // ignored by tunnel contention
  LinkSpec link;
  TopologySpec topology;
  // Queue policy on both emulated links.  kAuto infers it from the flow mix
  // exactly as before this field existed (the unique scheme requesting a
  // policy wins; two different requests are rejected).  An explicit value
  // pairs any scheme with any discipline — but a value contradicting a
  // flow's own request (kPie under a Cubic-CoDel flow) is rejected, since
  // that flow's identity IS its queue policy.
  LinkAqm link_aqm = LinkAqm::kAuto;
  Duration run_time = sec(300);
  Duration warmup = sec(60);        // skipped by all metrics (§5.1)
  // One-way propagation, split by direction: _fwd delays the data-carrying
  // link, _rev the feedback link (min RTT = fwd + rev).  The paper's
  // symmetric 20 ms each way is the fwd == rev case; asymmetric values
  // model e.g. satellite-backhauled uplinks.  The omniscient delay
  // baseline rides the forward link only; Sprout's assumed one-way
  // propagation (min RTT / 2 in deployment) is derived as (fwd + rev) / 2
  // unless a flow's explicit SproutParams override says otherwise.
  Duration propagation_delay_fwd = msec(20);
  Duration propagation_delay_rev = msec(20);
  // Bernoulli loss (§5.6), split by direction: _fwd drops packets entering
  // the data-carrying link, _rev packets entering the feedback link.  The
  // paper's symmetric "each-way loss" is the fwd == rev case; asymmetric
  // values model lossy uplinks under clean downlinks (and vice versa).
  double loss_rate_fwd = 0.0;
  double loss_rate_rev = 0.0;
  double sprout_confidence = 95.0;  // Figure 9 sweeps this
  std::uint64_t seed = 42;
  bool capture_series = false;      // fill per-flow series (Fig. 1)
  Duration series_bin = msec(500);
  // Flight recorder (metrics/recorder.h): when set, every flow in every
  // topology — tower included — records a fixed-bin timeline (forecast vs
  // realized capacity, queue depth, drops, per-bin delay) into
  // FlowResult::timeline.  Pure observability: these two fields are
  // EXCLUDED from scenario_fingerprint (unlike capture_series), so a
  // timeline-on cell shares its fingerprint, derived seed and simulated
  // bytes with the timeline-off cell — which is what lets the
  // timeline_roundtrip ctest byte-diff a stripped timeline-on sweep
  // against a timeline-off one.
  bool record_timeline = false;
  Duration timeline_bin = msec(500);

  // Legacy symmetric view of the split loss fields: sets both directions,
  // exactly what assigning the old `loss_rate` field did.
  ScenarioSpec& set_loss_rate(double each_way) {
    loss_rate_fwd = each_way;
    loss_rate_rev = each_way;
    return *this;
  }

  // Legacy symmetric view of the split propagation fields: sets both
  // directions, exactly what assigning the old `propagation_delay` did.
  ScenarioSpec& set_propagation_delay(Duration each_way) {
    propagation_delay_fwd = each_way;
    propagation_delay_rev = each_way;
    return *this;
  }
};

// Convenience constructors for the common shapes.
[[nodiscard]] ScenarioSpec single_flow_scenario(SchemeId scheme,
                                                const LinkPreset& link);
[[nodiscard]] ScenarioSpec shared_queue_scenario(SchemeId scheme,
                                                 int num_flows,
                                                 const LinkPreset& link);
// Heterogeneous shared queue: one FlowSpec per flow in one queue.
[[nodiscard]] ScenarioSpec heterogeneous_scenario(std::vector<FlowSpec> flows,
                                                  const LinkPreset& link);
[[nodiscard]] ScenarioSpec tunnel_scenario(const std::string& network,
                                           bool via_tunnel);

// One flow's measured outcome (§5.1 metrics).  Throughput and delay are
// measured over the flow's own active window intersected with the
// scenario's measurement window; the coactive fields are measured over the
// window where EVERY flow was active (the only interval where cross-flow
// shares are comparable).
//
// Window semantics for a stopping flow: measurement ends at the stop
// instant.  Packets already queued then still drain through the link (and
// count in ScenarioResult::packets_delivered) but are attributed to no
// flow's throughput or delay — extending the delay window past the stop
// would instead ramp the §5.1 sawtooth without bound once arrivals cease,
// which is an artifact of departure, not queueing.
struct FlowResult {
  std::string label;             // scheme name; "Cubic"/"Skype" in tunnel
  SchemeId scheme = SchemeId::kSprout;
  double active_from_s = 0.0;    // this flow's measurement window
  double active_to_s = 0.0;
  double throughput_kbps = 0.0;
  double delay95_ms = 0.0;       // 95% end-to-end delay
  double mean_delay_ms = 0.0;
  double coactive_throughput_kbps = 0.0;  // over the co-active window
  double capacity_share = 0.0;   // coactive throughput / coactive capacity
  // Wire bytes delivered to this flow over the WHOLE run, counted at the
  // forward-link demux — including warmup and any bytes the flow's standing
  // queue drained after its stop instant.  This is the ledger that closes
  // the drain-tail gap described above: windowed metrics ignore the tail,
  // delivered_bytes attributes it to the flow that sent it.
  ByteCount delivered_bytes = 0;
  // Streaming per-packet one-way delay histogram over the flow's
  // measurement window.  The tower streams it (no retained records); the
  // other topologies maintain it alongside their retained records, so
  // flow_metrics(i).delay_stats() reports p50/p95/p99/p999 on EVERY
  // topology.
  DelayHistogram delay_hist;
  std::vector<SeriesPoint> series;  // if spec.capture_series
  // Flight-recorder timeline (if spec.record_timeline).  Fingerprint-
  // ignored, merge-preserved, omitted from JSON when unconfigured, and
  // erasable via timeline_report strip-timeline.
  FlowTimeline timeline;
};

// Uniform read-only view over one flow's metrics: the one accessor story
// for per-flow delay (histogram-backed when streaming, sawtooth-derived
// otherwise), throughput and fairness inputs.  FlowResult's plain fields
// remain readable for now; new call sites should go through the view.
class FlowMetricsView {
 public:
  explicit FlowMetricsView(const FlowResult& flow) : flow_(&flow) {}

  [[nodiscard]] const std::string& label() const { return flow_->label; }
  [[nodiscard]] SchemeId scheme() const { return flow_->scheme; }
  [[nodiscard]] double throughput_kbps() const {
    return flow_->throughput_kbps;
  }
  [[nodiscard]] double capacity_share() const { return flow_->capacity_share; }
  [[nodiscard]] ByteCount delivered_bytes() const {
    return flow_->delivered_bytes;
  }
  // 95% delay: the §5.1 sawtooth value when recorded, else the streaming
  // histogram's p95.
  [[nodiscard]] double delay95_ms() const;
  // Streaming-histogram percentile summary (p50/p95/p99/p999/mean); all
  // zeros when the flow has no histogram.
  [[nodiscard]] DelayStats delay_stats() const;
  [[nodiscard]] bool has_histogram() const {
    return flow_->delay_hist.configured();
  }
  [[nodiscard]] const DelayHistogram& delay_histogram() const {
    return flow_->delay_hist;
  }

 private:
  const FlowResult* flow_;
};

// Per-cell execution telemetry, stamped by the orchestrator's workers when
// --metrics-out asks for it (OrchestratorOptions::record_runtime).  Pure
// observability: scenario fingerprints hash SPECS, never results, so the
// field is fingerprint-invisible by construction, merge carries it along
// untouched, and the JSON writer emits it only when `recorded` — an
// untelemetered run's bytes are unchanged.
struct CellRuntime {
  bool recorded = false;
  double wall_s = 0.0;               // wall time of the cell's run_shard
  std::int64_t peak_rss_bytes = 0;   // getrusage RU_MAXRSS of the worker
  int attempt = 0;                   // 1-based dispatch attempt that landed
};

// The unified result: per-flow metrics plus link-level aggregates.  The
// single-flow accessors mirror the paper's headline metrics for flows[0].
struct ScenarioResult {
  std::vector<FlowResult> flows;

  double capacity_kbps = 0.0;            // forward link, measurement window
  // All flows' delivered bytes over the measurement window, as a rate:
  // staggered flows contribute weighted by their own activity window, so
  // aggregate_utilization is a true fraction of the link's capacity.
  double aggregate_throughput_kbps = 0.0;
  double aggregate_utilization = 0.0;
  // Cross-flow fairness over the co-active window [coactive_from_s,
  // coactive_to_s): Jain's index of the flows' coactive throughputs.
  // NaN when the flows' activity windows are disjoint (no instant where
  // all flows were live, so no fairness number exists); the coactive_*
  // fields are 0 in that case.
  double jain_index = 1.0;
  double coactive_from_s = 0.0;
  double coactive_to_s = 0.0;
  double coactive_capacity_kbps = 0.0;
  double max_delay95_ms = 0.0;
  double omniscient_delay95_ms = 0.0;    // baseline on the same trace
  std::int64_t packets_delivered = 0;    // forward link
  std::int64_t link_drops = 0;           // forward link random + queue drops
  std::vector<SeriesPoint> capacity_series;  // if spec.capture_series
  // Population-wide per-packet delay histogram: the exact merge of every
  // flow's delay_hist.  Configured only for streaming topologies (tower).
  DelayHistogram population_delay_hist;
  // Execution telemetry (orchestrator --metrics-out runs only; see
  // CellRuntime).  Not a simulation output — excluded from fingerprints
  // and from the obs_roundtrip byte diff via obs_report strip-runtime.
  CellRuntime runtime;

  // Single-flow views (flows[0]).
  [[nodiscard]] double throughput_kbps() const;
  [[nodiscard]] double delay95_ms() const;
  [[nodiscard]] double mean_delay_ms() const;
  [[nodiscard]] double utilization() const;
  // The paper's headline delay metric: max(0, delay95 - omniscient delay95).
  [[nodiscard]] double self_inflicted_delay_ms() const;

  // Uniform per-flow accessor view; throws std::out_of_range.
  [[nodiscard]] FlowMetricsView flow_metrics(std::size_t i) const;
  // Population delay summary (p50/p95/p99/p999/mean) from the merged
  // histogram; all zeros when no streaming topology ran.
  [[nodiscard]] DelayStats population_delay() const;
};

// Shared, immutable cache of resolved link traces (generated presets,
// parsed trace files, synthetic runs).  A sweep hands one cache to every
// cell so each distinct trace is materialized once; entries are
// deterministic functions of their key, so first-writer-wins is safe and
// results do not depend on thread interleaving.
//
// Trace FILES are keyed by path alone: the cache assumes a file's
// contents do not change during the cache's lifetime.  Rewriting a trace
// file between runs requires a fresh ScenarioCache/SweepRunner (or a new
// path), or the old contents will be silently reused.
class ScenarioCache {
 public:
  // Returns the cached trace for `key`, building it with `build` on miss.
  // Lookups feed the process-wide obs registry counters
  // "cache.traces.hits" / "cache.traces.misses" (src/obs/metrics.h).
  [[nodiscard]] std::shared_ptr<const Trace> trace(
      const std::string& key, const std::function<Trace()>& build);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Trace>> traces_;
};

// Canonical cache key for a synthetic trace: enumerates every
// CellProcessParams field plus seed and duration.  The sweep's content
// fingerprint hashes this same string, so a params field added here keeps
// caching and seed derivation consistent by construction.
[[nodiscard]] std::string synthetic_link_key(const CellProcessParams& params,
                                             std::uint64_t seed,
                                             Duration duration);

// Relative wall-clock weight of simulating one flow of `scheme` for one
// simulated second, normalized to Cubic == 1.  Forecaster-bearing schemes
// cost one to two orders of magnitude more than window-based TCP (the
// per-tick Bayesian update dominates); the constants and their provenance
// are recorded at the definition.
[[nodiscard]] double scheme_cost_weight(SchemeId scheme);

// Relative cost estimate of simulating one cell: simulated seconds times
// the summed scheme_cost_weight of the flows sharing the run (so a Sprout
// cell correctly outweighs a Cubic cell of the same duration).  Not a
// wall-clock prediction — just a stable ordering key, so a sweep can
// schedule its longest cells first (sweep.h) and a shard planner can
// balance uneven grids (spec/plan.h).
[[nodiscard]] double estimated_cost(const ScenarioSpec& spec);

// Runs one scenario.  With a cache, expensive per-run precomputation
// (trace generation/parsing) is shared across calls; without one, each
// call materializes its own traces.  Throws std::invalid_argument for
// specs the topology or scheme cannot satisfy.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec,
                                          ScenarioCache* cache = nullptr);

}  // namespace sprout

#include "runner/tower.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <tuple>
#include <utility>

#include "core/tick_batcher.h"
#include "link/cellsim.h"
#include "link/tower_cell.h"
#include "metrics/flow_metrics.h"
#include "obs/metrics.h"
#include "runner/detail.h"
#include "runner/registry.h"
#include "sim/relay.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sprout {

namespace {

// splitmix64: the standard seed scrambler, also used by the sweep's
// derive_cell_seed.  Keeps per-user channel seeds decorrelated even for
// adjacent user ids and small base seeds.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t user_channel_seed(std::uint64_t base, std::int64_t user_id) {
  return splitmix64(base ^ splitmix64(static_cast<std::uint64_t>(user_id)));
}

}  // namespace

std::vector<TowerUserSession> derive_tower_sessions(const TowerSpec& tower,
                                                    Duration run_time,
                                                    std::uint64_t churn_seed) {
  Rng rng(churn_seed);

  double total_weight = 0.0;
  for (const UserMixEntry& e : tower.mix) total_weight += e.weight;

  const auto draw_scheme = [&] {
    const double x = rng.uniform(0.0, total_weight);
    double cum = 0.0;
    for (const UserMixEntry& e : tower.mix) {
      cum += e.weight;
      if (x < cum) return e.scheme;
    }
    return tower.mix.back().scheme;
  };
  const auto draw_departure = [&](Duration arrival) {
    if (tower.mean_session_s <= 0.0) return run_time;
    const double length_s = rng.exponential(1.0 / tower.mean_session_s);
    return std::min(run_time, arrival + from_seconds(length_s));
  };
  const auto make_session = [&](std::int64_t id, Duration arrival) {
    TowerUserSession s;
    s.user_id = id;
    s.arrival = arrival;
    s.scheme = draw_scheme();
    s.departure = draw_departure(arrival);
    s.channel_seed = user_channel_seed(tower.channel.seed, id);
    return s;
  };

  std::vector<TowerUserSession> sessions;
  sessions.reserve(static_cast<std::size_t>(tower.num_users));
  for (int u = 0; u < tower.num_users; ++u) {
    sessions.push_back(make_session(u + 1, Duration::zero()));
  }
  if (tower.arrival_rate_per_s > 0.0) {
    Duration t = Duration::zero();
    std::int64_t next_id = tower.num_users + 1;
    for (;;) {
      t += from_seconds(rng.exponential(tower.arrival_rate_per_s));
      if (t >= run_time) break;
      sessions.push_back(make_session(next_id++, t));
    }
  }
  return sessions;
}

namespace detail {

ScenarioResult run_tower(const ScenarioSpec& spec) {
  const TowerSpec& tower = spec.topology.tower_spec;

  // Seed derivation order is part of the determinism contract: churn and
  // reverse-path streams fork first, then per-user forward-link seeds and
  // AQM policies in user-id order.
  Rng seeder(spec.seed);
  const std::uint64_t churn_seed = seeder.fork_seed();
  const std::uint64_t rev_seed = seeder.fork_seed();

  const std::vector<TowerUserSession> sessions =
      derive_tower_sessions(tower, spec.run_time, churn_seed);

  // The shared queue policy is resolved from the mix's schemes exactly as
  // a heterogeneous shared queue would (one link, one discipline).
  std::vector<const SchemeInfo*> mix_schemes;
  mix_schemes.reserve(tower.mix.size());
  for (const UserMixEntry& e : tower.mix) {
    mix_schemes.push_back(&SchemeRegistry::instance().info(e.scheme));
  }
  const LinkAqm link_aqm = resolve_link_aqm(spec, mix_schemes);

  // --- Phase 1: drive the PF cell over the whole churn timeline, slot by
  // slot, yielding each user's delivery-opportunity trace.  Channels are
  // stepped lazily inside the cell; no whole-population trace is ever
  // materialized.  Arrivals/departures take effect at the first slot
  // boundary at or after their instant.
  const Duration horizon = spec.run_time + sec(1);
  TowerCellParams cell_params;
  cell_params.slot = tower.slot;
  cell_params.pf_window = tower.pf_window;
  TowerCell cell(cell_params);

  struct ChurnEvent {
    Duration time;
    bool departure;  // arrivals sort first at equal times
    std::size_t session;
  };
  std::vector<ChurnEvent> churn;
  churn.reserve(sessions.size() * 2);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    churn.push_back({sessions[i].arrival, false, i});
    churn.push_back({sessions[i].departure, true, i});
  }
  std::sort(churn.begin(), churn.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return std::tie(a.time, a.departure, a.session) <
                     std::tie(b.time, b.departure, b.session);
            });

  std::vector<std::vector<TimePoint>> user_opps(sessions.size());
  std::vector<bool> detached(sessions.size(), false);
  std::size_t next_churn = 0;
  const TimePoint sim_end = TimePoint{} + spec.run_time;
  const bool obs_on = obs::enabled();
  std::int64_t attached = 0;
  while (cell.now() < sim_end) {
    while (next_churn < churn.size() &&
           TimePoint{} + churn[next_churn].time <= cell.now()) {
      const ChurnEvent& ev = churn[next_churn++];
      const TowerUserSession& s = sessions[ev.session];
      if (ev.departure) {
        user_opps[ev.session] = cell.remove_user(s.user_id);
        detached[ev.session] = true;
        if (obs_on) {
          static obs::Counter& departures =
              obs::Registry::instance().counter("tower.churn.departures");
          departures.add();
          --attached;
        }
      } else {
        cell.add_user(s.user_id,
                      make_tower_channel(tower.channel, s.channel_seed));
        if (obs_on) {
          static obs::Counter& arrivals =
              obs::Registry::instance().counter("tower.churn.arrivals");
          arrivals.add();
          obs::Registry::instance()
              .gauge("tower.attached_users.peak")
              .set_max(static_cast<double>(++attached));
        }
      }
    }
    cell.step();
  }
  if (obs_on) {
    // One PF decision per elapsed slot; slots_served() excludes the slots
    // where no user was attached, so the pair exposes idle airtime too.
    static obs::Counter& slots =
        obs::Registry::instance().counter("tower.pf.slots_served");
    slots.add(cell.slots_served());
  }
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (!detached[i]) user_opps[i] = cell.remove_user(sessions[i].user_id);
  }

  // --- Phase 2: the event-driven run.  Each user gets a dedicated
  // downlink CellsimLink over its PF trace; feedback shares one
  // fixed-delay reverse pipe (per-user feedback is tiny and uncontended).
  Simulator sim;

  DelayLink rev_link(sim, spec.propagation_delay_rev, spec.loss_rate_rev,
                     rev_seed);
  DemuxSink rev_demux;
  rev_link.set_target(rev_demux);

  SproutParams default_params;
  default_params.confidence_percent = spec.sprout_confidence;
  default_params.assumed_propagation =
      (spec.propagation_delay_fwd + spec.propagation_delay_rev) / 2;

  const TimePoint meas_from = TimePoint{} + spec.warmup;
  const TimePoint meas_to = TimePoint{} + spec.run_time;

  TickEvolveBatcher evolve_batcher;

  struct UserRun {
    std::unique_ptr<RelaySink> egress;
    std::unique_ptr<CellsimLink> link;
    std::unique_ptr<SchemeFlow> flow;
    Simulator::ScopeId scope = Simulator::kRootScope;
  };
  std::vector<UserRun> users;
  users.reserve(sessions.size());

  // Flight recorders (if asked): each user owns a dedicated downlink, so
  // its flow recorder pairs with its own link-level recorder (queue depth
  // and drops), indexed in session order.  Declared before `users` so the
  // taps outlive the flows that feed them.
  std::vector<std::unique_ptr<FlowTimelineRecorder>> flow_recs;
  std::vector<std::unique_ptr<FlowTimelineRecorder>> link_recs;
  if (spec.record_timeline) {
    flow_recs.reserve(sessions.size());
    link_recs.reserve(sessions.size());
  }

  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const TowerUserSession& s = sessions[i];

    CellsimConfig cfg;
    cfg.propagation_delay = spec.propagation_delay_fwd;
    cfg.loss_rate = spec.loss_rate_fwd;
    cfg.seed = seeder.fork_seed();
    std::unique_ptr<AqmPolicy> policy = make_aqm_policy(link_aqm, seeder);

    // A user the PF rule never served still needs a non-empty trace
    // (CellsimLink requires one); a single sentinel opportunity at the
    // departure instant is unreachable by construction — the user's scope
    // is cancelled there.
    if (user_opps[i].empty()) {
      user_opps[i].push_back(TimePoint{} + s.departure);
    }
    Trace trace(std::move(user_opps[i]), horizon);

    StreamingMetricsConfig streaming;
    streaming.hist_bin = tower.hist_bin;
    streaming.hist_max = tower.hist_max;
    streaming.from = std::max(meas_from, TimePoint{} + s.arrival);
    streaming.to = std::min(meas_to, TimePoint{} + s.departure);

    UserRun u;
    u.scope = sim.new_scope();
    {
      // Everything the user wires or schedules — the link's opportunity
      // loop, the endpoints' clocks, the deferred start — lands in its
      // scope, so departure cancels the whole causal chain at once.
      Simulator::ScopeGuard guard(sim, u.scope);
      u.egress = std::make_unique<RelaySink>();
      u.link = std::make_unique<CellsimLink>(sim, std::move(trace), cfg,
                                             *u.egress, std::move(policy));
      if (spec.record_timeline) {
        flow_recs.push_back(std::make_unique<FlowTimelineRecorder>(
            spec.timeline_bin, TimePoint{}, meas_to));
        link_recs.push_back(std::make_unique<FlowTimelineRecorder>(
            spec.timeline_bin, TimePoint{}, meas_to));
        u.link->set_timeline_recorder(link_recs.back().get());
      }
      FlowContext ctx{sim,
                      default_params,
                      s.user_id,
                      static_cast<int>(i),
                      *u.link,
                      rev_link,
                      u.link->trace(),
                      spec.propagation_delay_fwd,
                      spec.run_time,
                      &evolve_batcher,
                      &streaming,
                      /*delay_histogram=*/nullptr,
                      spec.record_timeline ? flow_recs.back().get() : nullptr};
      u.flow = SchemeRegistry::instance().info(s.scheme).make_flow(ctx);
      u.egress->set_target(u.flow->data_egress());
      if (PacketSink* feedback = u.flow->feedback_egress()) {
        rev_demux.route(s.user_id, *feedback);
      }
      if (s.arrival == Duration::zero()) {
        u.flow->start();
      } else {
        sim.at(TimePoint{} + s.arrival, [raw = u.flow.get()] { raw->start(); });
      }
    }
    // The departure cancel is scheduled from the ROOT scope (outside the
    // guard) so it cannot cancel itself; being scheduled at setup time it
    // also sorts before any same-instant runtime event.
    if (s.departure < spec.run_time) {
      sim.at(TimePoint{} + s.departure,
             [&sim, scope = u.scope] { sim.cancel_scope(scope); });
    }
    users.push_back(std::move(u));
  }

  sim.run_until(meas_to);

  // --- Results.  Per-user metrics come from the streaming histograms and
  // windowed byte counters; the population histogram is their exact merge.
  // Under churn there is no instant where ALL users are live, so the
  // coactive fields stay zero and Jain's index is computed over the
  // windowed per-user throughputs instead (documented deviation from the
  // shared-queue topology's co-active convention).  There is also no
  // single forward trace for the omniscient baseline; that field stays 0.
  ScenarioResult r;
  r.population_delay_hist = DelayHistogram(tower.hist_bin, tower.hist_max);
  std::vector<double> throughputs;
  ByteCount capacity_bytes = 0;
  r.flows.reserve(sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const TowerUserSession& s = sessions[i];
    const UserRun& u = users[i];
    const FlowMetrics& m = u.flow->metrics();
    const TimePoint from = std::max(meas_from, TimePoint{} + s.arrival);
    const TimePoint to = std::min(meas_to, TimePoint{} + s.departure);

    FlowResult fr;
    fr.label = SchemeRegistry::instance().info(s.scheme).name;
    fr.scheme = s.scheme;
    fr.active_from_s = to_seconds(from.time_since_epoch());
    fr.active_to_s = to_seconds(to.time_since_epoch());
    fr.delivered_bytes = m.total_bytes();
    if (from < to) {
      fr.throughput_kbps = m.window_throughput_kbps();
      fr.delay_hist = m.histogram();
      if (fr.delay_hist.samples() > 0) {
        fr.delay95_ms = fr.delay_hist.percentile_ms(95.0);
        fr.mean_delay_ms = fr.delay_hist.mean_ms();
      }
      r.population_delay_hist.merge(fr.delay_hist);
      // capacity_share: achieved throughput over what the PF scheduler
      // granted this user inside its own window.
      const double granted_kbps =
          kbps(u.link->trace().deliverable_bytes(from, to), to - from);
      fr.capacity_share =
          granted_kbps > 0.0 ? fr.throughput_kbps / granted_kbps : 0.0;
      throughputs.push_back(fr.throughput_kbps);
      r.aggregate_throughput_kbps += fr.throughput_kbps *
                                     to_seconds(to - from) /
                                     to_seconds(meas_to - meas_from);
      r.max_delay95_ms = std::max(r.max_delay95_ms, fr.delay95_ms);
    }
    if (spec.record_timeline) {
      fr.timeline =
          flow_recs[i]->finalize(&u.link->trace(), link_recs[i].get());
    }
    capacity_bytes += u.link->trace().deliverable_bytes(meas_from, meas_to);
    r.packets_delivered += u.link->delivered_packets();
    r.link_drops += u.link->random_drops() + u.link->queue_drops();
    r.flows.push_back(std::move(fr));
  }
  r.capacity_kbps = kbps(capacity_bytes, meas_to - meas_from);
  r.aggregate_utilization =
      r.capacity_kbps > 0.0 ? r.aggregate_throughput_kbps / r.capacity_kbps
                            : 0.0;
  r.jain_index = throughputs.empty()
                     ? std::numeric_limits<double>::quiet_NaN()
                     : jain_fairness(throughputs);
  return r;
}

}  // namespace detail

}  // namespace sprout

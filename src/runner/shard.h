// Sharded sweep execution: split a grid across OS processes, merge the
// pieces back, prove nothing was lost or changed.
//
// A SweepSpec is the unit of distribution: an ordered grid of scenario
// cells plus an optional base seed.  Because per-cell seeds are derived
// from cell CONTENT (sweep.h), any partition of the grid runs each cell
// bit-identically to the serial run — so
//
//     serial == thread pool == N processes, merged
//
// is an invariant, not an aspiration, and the regression tests assert it
// bitwise.  Shards are content-addressed: every shard file carries the
// grid's fingerprint (cell count + every cell fingerprint + base seed), so
// merging shards of two different grids — or of two builds that silently
// disagree about what a cell means — fails loudly instead of producing a
// plausible-looking chimera.
//
// The `sweep_shard` CLI (examples/sweep_shard.cpp) is the process driver:
//   sweep_shard run   --grid G --shard i/N --out shard_i.json
//   sweep_shard merge --grid G --out merged.json shard_*.json
// and `run` without --shard writes the merged schema directly, so a full
// single-process run and a merged N-process run of the same grid produce
// byte-identical files (the ctest shard_roundtrip target and the CI shard
// job both diff them).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runner/sweep.h"

namespace sprout {

class JsonValue;

// An ordered grid of independent cells — what a sharded sweep distributes.
struct SweepSpec {
  std::vector<ScenarioSpec> cells;
  // When set, every cell's seed is content-derived from this base
  // (derive_cell_seed), exactly as SweepOptions::base_seed.
  std::optional<std::uint64_t> base_seed;
};

// Content address of the whole grid: cell count, every cell's fingerprint
// in grid order, and the base seed.  Two processes that built "the same"
// grid agree on it; any drift in a single field of a single cell changes it.
[[nodiscard]] std::uint64_t sweep_fingerprint(const SweepSpec& spec);

// The cell indices shard `shard_index` of `shard_count` owns: indices
// congruent to shard_index mod shard_count.  The round-robin deal keeps
// systematic grid structure (e.g. all long cells listed first) from
// landing in one shard.  Throws std::invalid_argument for an out-of-range
// shard_index or a non-positive shard_count.
[[nodiscard]] std::vector<std::size_t> shard_cell_indices(
    std::size_t total_cells, int shard_index, int shard_count);

// One executed slice of a grid: which cells ran (indices into the grid),
// their content fingerprints, and their results, stamped with the grid's
// address.  The three vectors are parallel.
struct ShardResult {
  std::uint64_t sweep_fingerprint = 0;
  std::size_t total_cells = 0;
  // Which partition strategy cut this shard ("round-robin", "lpt",
  // "explicit" for hand-picked --cells lists; "" when unrecorded, e.g. a
  // pre-split shard file).  Purely descriptive for a single shard — but
  // shards of one grid cut by DIFFERENT strategies cannot partition it
  // cleanly, so merge_shards rejects a mix of recorded strategies up
  // front instead of failing later with a confusing collision/gap error.
  std::string partition;
  std::vector<std::size_t> cell_indices;
  std::vector<std::uint64_t> cell_fingerprints;
  std::vector<ScenarioResult> cells;
};

// A complete sweep: every cell of the grid, in grid order.
struct SweepResult {
  std::uint64_t fingerprint = 0;
  std::vector<std::uint64_t> cell_fingerprints;
  std::vector<ScenarioResult> cells;
};

// Runs the whole grid in this process (thread-pool parallel; 0 threads =
// hardware concurrency) and returns it with fingerprints attached.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec, int threads = 0);

// Runs one slice of the grid in this process.  `cell_indices` may come
// from shard_cell_indices or be an explicit list; duplicates and
// out-of-range indices are rejected.  Each cell's result is bit-identical
// to the same cell's result in a full run of the grid.
[[nodiscard]] ShardResult run_shard(const SweepSpec& spec,
                                    std::vector<std::size_t> cell_indices,
                                    int threads = 0);

// Merges executed shards into one SweepResult.  Throws std::runtime_error
// when the shards are not a clean partition of one grid: disagreeing sweep
// fingerprints or cell totals, a cell index covered twice (collision), or
// a cell index covered never (coverage gap).
[[nodiscard]] SweepResult merge_shards(const std::vector<ShardResult>& shards);

// Checks a merged result against the grid it claims to represent: the
// sweep fingerprint and every per-cell fingerprint must match what `spec`
// derives.  Throws std::runtime_error naming the first mismatch.
void verify_sweep_result(const SweepResult& merged, const SweepSpec& spec);

// JSON round trip.  Writers are deterministic (stable field order, exact
// 17-significant-digit doubles), so equal results serialize to equal
// bytes; readers throw std::runtime_error on truncated or corrupt input,
// a wrong schema tag, or internally inconsistent shard data.
void write_shard_json(std::ostream& os, const ShardResult& shard);
[[nodiscard]] ShardResult read_shard_json(std::string_view text);
void write_sweep_json(std::ostream& os, const SweepResult& sweep);
[[nodiscard]] SweepResult read_sweep_json(std::string_view text);

// One ScenarioResult, serialized with the exact writer/reader every shard
// and sweep file uses for its per-cell "result" object.  Exposed so the
// orchestrator's append-only journals (runner/orchestrator.h) carry
// byte-identical result records: journal replay reconstructs the same
// ShardResult JSON merge_shards accepts, and orchestrated == sharded ==
// serial stays a byte-level invariant.
void write_scenario_result_json(std::ostream& os, const ScenarioResult& r);
[[nodiscard]] ScenarioResult scenario_result_from_json(const JsonValue& v);

}  // namespace sprout

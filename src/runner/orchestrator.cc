#include "runner/orchestrator.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/table.h"

namespace sprout {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr const char* kJournalSchema = "sprout-journal-v1";
// Worker exit codes with a fixed meaning (anything else is "crashed").
constexpr int kWorkerCrashExit = 70;    // fault-injection crash hook
constexpr int kWorkerJournalExit = 71;  // could not open/append its journal

std::uint64_t parse_u64(const std::string& s, const std::string& label) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error(label + ": malformed unsigned integer \"" + s +
                             "\"");
  }
  try {
    return std::stoull(s);
  } catch (const std::out_of_range&) {
    throw std::runtime_error(label + ": unsigned integer overflow in \"" + s +
                             "\"");
  }
}

std::size_t parse_size(const JsonValue& v, const std::string& label) {
  const double d = v.as_number();
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d || i < 0) {
    throw std::runtime_error(label + ": expected a non-negative integer");
  }
  return static_cast<std::size_t>(i);
}

// 17-significant-digit doubles, the repo-wide JSON discipline.
void json_number(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

// Matches a fault-injection entry: n attempts affected, n < 0 = always.
bool fault_matches(const std::vector<std::pair<std::size_t, int>>& table,
                   std::size_t index, int attempt) {
  for (const auto& [cell, n] : table) {
    if (cell == index) return n < 0 || attempt <= n;
  }
  return false;
}

// --- worker side ---------------------------------------------------------

// Blocking line read; "" on EOF.  The coordinator's commands are short
// ("R <idx> <attempt>" / "Q"), so byte-at-a-time reads are fine.
std::string read_line_fd(int fd) {
  std::string line;
  char c = 0;
  for (;;) {
    const ssize_t n = read(fd, &c, 1);
    if (n <= 0) return std::string();  // EOF/error: treated as "quit"
    if (c == '\n') return line;
    line.push_back(c);
  }
}

void write_all_fd(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = write(fd, text.data() + off, text.size() - off);
    if (n <= 0) return;  // coordinator gone; the worker will soon see EOF
    off += static_cast<std::size_t>(n);
  }
}

// Strips newlines so a cell's error message survives the line protocol.
std::string one_line(std::string msg) {
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return msg;
}

// The forked worker: read a cell index, run it, append the record to this
// slot's journal, ack — forever.  Exits only via _exit (never back into
// the caller's stack), so inherited stdio buffers are never double-flushed.
[[noreturn]] void worker_main(const SweepSpec& spec,
                              const OrchestratorOptions& options, int slot,
                              int cmd_fd, int ack_fd) {
  const std::string path =
      options.journal_dir + "/" + journal_file_name(slot);
  std::error_code ec;
  const bool fresh = !fs::exists(path, ec) || fs::file_size(path, ec) == 0;
  std::ofstream journal(path, std::ios::binary | std::ios::app);
  if (!journal) _exit(kWorkerJournalExit);
  if (fresh) {
    write_journal_header(journal, spec, slot);
    journal.flush();
    if (!journal) _exit(kWorkerJournalExit);
  }

  for (;;) {
    const std::string line = read_line_fd(cmd_fd);
    if (line.empty() || line[0] == 'Q') {
      if (options.record_runtime) {
        // Parting snapshot: this worker's whole obs registry (cache
        // hit/miss tallies always; filter/kernel counters when SPROUT_OBS
        // was on) — compact JSON is single-line, so it rides the ack
        // protocol as one "S" record.
        std::ostringstream snap;
        snap << "S ";
        obs::Registry::instance().write_json_compact(snap);
        snap << "\n";
        write_all_fd(ack_fd, snap.str());
      }
      _exit(0);
    }
    std::size_t index = 0;
    int attempt = 1;
    {
      std::istringstream is(line);
      char tag = 0;
      is >> tag >> index >> attempt;
      if (tag != 'R' || !is) _exit(1);
    }

    if (fault_matches(options.crash_cells, index, attempt)) {
      _exit(kWorkerCrashExit);
    }
    if (fault_matches(options.hang_cells, index, attempt)) {
      for (;;) pause();  // until the coordinator's timeout SIGKILLs us
    }

    try {
      // One-cell shard: the exact seed derivation and execution path of a
      // static shard, so orchestrated == sharded == serial, bit for bit.
      const Clock::time_point cell_start = Clock::now();
      ShardResult one = run_shard(spec, {index}, /*threads=*/1);
      JournalRecord record;
      record.index = index;
      record.fingerprint = one.cell_fingerprints.at(0);
      record.result = std::move(one.cells.at(0));
      if (options.record_runtime) {
        // Execution telemetry, stamped before journaling so the record —
        // and every merge of it — carries the numbers.  Gated by an
        // explicit option (NOT the SPROUT_OBS env), so env-enabled obs
        // runs stay byte-identical to obs-off runs.
        record.result.runtime.recorded = true;
        record.result.runtime.wall_s =
            std::chrono::duration<double>(Clock::now() - cell_start).count();
        struct rusage usage {};
        if (getrusage(RUSAGE_SELF, &usage) == 0) {
          // ru_maxrss is KiB on Linux.
          record.result.runtime.peak_rss_bytes =
              static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
        }
        record.result.runtime.attempt = attempt;
      }
      write_journal_record(journal, record);
      journal.flush();
      if (!journal) {
        write_all_fd(ack_fd, "F " + std::to_string(index) +
                                 " journal append failed (disk full?)\n");
        continue;
      }
      if (options.record_runtime) {
        // Extended ack: the coordinator streams these into metrics_out
        // without re-reading the journal.
        std::ostringstream ack;
        ack << "D " << index << ' ';
        ack.precision(17);
        ack << record.result.runtime.wall_s << ' '
            << record.result.runtime.peak_rss_bytes << "\n";
        write_all_fd(ack_fd, ack.str());
      } else {
        write_all_fd(ack_fd, "D " + std::to_string(index) + "\n");
      }
    } catch (const std::exception& e) {
      write_all_fd(ack_fd,
                   "F " + std::to_string(index) + " " + one_line(e.what()) +
                       "\n");
    }
  }
}

// --- coordinator side ----------------------------------------------------

struct Worker {
  pid_t pid = -1;
  int cmd_fd = -1;  // coordinator -> worker
  int ack_fd = -1;  // worker -> coordinator
  int slot = 0;     // journal id
  std::string buffer;
  bool alive = false;
  bool busy = false;
  std::size_t cell = 0;
  int attempt = 0;
  Clock::time_point started;
  bool timed_out = false;
};

struct RetryEntry {
  std::size_t index = 0;
  Clock::time_point not_before;
};

double lpt_makespan(std::vector<double> costs, int bins) {
  if (bins < 1) bins = 1;
  std::sort(costs.begin(), costs.end(), std::greater<>());
  std::vector<double> load(static_cast<std::size_t>(bins), 0.0);
  for (const double c : costs) {
    *std::min_element(load.begin(), load.end()) += c;
  }
  return load.empty() ? 0.0 : *std::max_element(load.begin(), load.end());
}

std::string describe_status(int status) {
  if (WIFSIGNALED(status)) {
    return "worker killed by signal " + std::to_string(WTERMSIG(status));
  }
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == kWorkerJournalExit) {
      return "worker could not append to its journal";
    }
    return "worker exited with status " + std::to_string(code);
  }
  return "worker died";
}

// RAII: orchestrate writes into possibly-broken pipes of dying workers;
// SIGPIPE would kill the coordinator, so it is ignored for the duration.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() { old_ = signal(SIGPIPE, SIG_IGN); }
  ~ScopedSigpipeIgnore() { signal(SIGPIPE, old_); }

 private:
  using Handler = void (*)(int);
  Handler old_;
};

class Coordinator {
 public:
  Coordinator(const SweepSpec& spec, const OrchestratorOptions& options)
      : spec_(spec),
        options_(options),
        total_(spec.cells.size()),
        completed_(spec.cells.size(), false),
        poisoned_flag_(spec.cells.size(), false),
        fingerprint_(sweep_fingerprint(spec)),
        out_(options.progress_out != nullptr ? *options.progress_out
                                             : std::cerr),
        // \r-rewriting is for humans at real terminals only: an explicit
        // progress_out (tests) or a redirected/CI stderr gets sparse plain
        // lines instead of carriage-return spam.
        tty_(options.progress_out == nullptr &&
             isatty(STDERR_FILENO) == 1) {}

  OrchestrateOutcome run() {
    validate_options();
    fs::create_directories(options_.journal_dir);
    if (!options_.trace_out.empty()) obs::Tracer::instance().start();
    if (!options_.metrics_out.empty()) {
      metrics_.open(options_.metrics_out, std::ios::binary | std::ios::trunc);
      if (!metrics_) {
        throw std::runtime_error("cannot write metrics file " +
                                 options_.metrics_out);
      }
      metrics_ << "{\"schema\": \"sprout-metrics-v1\", \"sweep_fingerprint\": "
                  "\""
               << fingerprint_ << "\", \"total_cells\": " << total_ << "}\n";
      metrics_.flush();
    }
    resume_from_journals();

    std::vector<std::size_t> todo;
    for (std::size_t i = 0; i < total_; ++i) {
      if (!completed_[i]) todo.push_back(i);
    }
    // Longest-first work queue: descending estimated_cost, ties by index,
    // so dispatch order is a pure function of the spec.
    std::stable_sort(todo.begin(), todo.end(),
                     [&](std::size_t a, std::size_t b) {
                       return estimated_cost(spec_.cells[a]) >
                              estimated_cost(spec_.cells[b]);
                     });
    pending_.assign(todo.begin(), todo.end());

    if (!pending_.empty()) {
      ScopedSigpipeIgnore ignore_sigpipe;
      int want = options_.workers > 0
                     ? options_.workers
                     : static_cast<int>(std::thread::hardware_concurrency());
      if (want < 1) want = 1;
      want = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(want), pending_.size()));
      for (int w = 0; w < want; ++w) spawn_worker(w);
      event_loop();
      shutdown_workers();
    }

    OrchestrateOutcome outcome;
    outcome.halted = halted_;
    outcome.resumed_cells = resumed_;
    outcome.executed_cells = executed_;
    outcome.poisoned = poisoned_;
    if (!halted_ && poisoned_.empty() && completed_count_ == total_) {
      outcome.merged = assemble();
      outcome.complete = true;
    }
    progress_line(/*final_line=*/true);
    if (metrics_.is_open()) {
      metrics_ << "{\"event\": \"summary\", \"completed\": "
               << completed_count_ << ", \"total\": " << total_
               << ", \"resumed\": " << resumed_
               << ", \"executed\": " << executed_
               << ", \"poisoned\": " << poisoned_.size()
               << ", \"halted\": " << (halted_ ? "true" : "false")
               << ", \"elapsed_s\": ";
      json_number(metrics_,
                  std::chrono::duration<double>(Clock::now() - start_).count());
      metrics_ << ", \"registry\": ";
      obs::Registry::instance().write_json_compact(metrics_);
      metrics_ << "}\n";
      metrics_.flush();
    }
    if (!options_.trace_out.empty()) {
      obs::Tracer& tracer = obs::Tracer::instance();
      std::ofstream trace(options_.trace_out,
                          std::ios::binary | std::ios::trunc);
      if (trace) tracer.write_json(trace);
      tracer.stop();
    }
    return outcome;
  }

 private:
  void validate_options() const {
    if (options_.journal_dir.empty()) {
      throw std::invalid_argument("journal_dir: must be set");
    }
    if (options_.workers < 0) {
      throw std::invalid_argument("workers: must be a positive worker count "
                                  "(or 0 for all cores)");
    }
    if (options_.max_attempts < 1) {
      throw std::invalid_argument("max_attempts: must be >= 1");
    }
    if (options_.retry_backoff_s < 0.0 || options_.cell_timeout_s < 0.0) {
      throw std::invalid_argument(
          "retry_backoff_s/cell_timeout_s: must be >= 0");
    }
  }

  void resume_from_journals() {
    for (const std::string& path : list_journal_files(options_.journal_dir)) {
      JournalScan scan = read_journal_file(path, /*allow_truncated_tail=*/true);
      if (scan.sweep_fingerprint != fingerprint_ ||
          scan.total_cells != total_) {
        throw std::runtime_error(
            path + ": journal was written for a different grid (fingerprint " +
            std::to_string(scan.sweep_fingerprint) + " over " +
            std::to_string(scan.total_cells) + " cells; this grid is " +
            std::to_string(fingerprint_) + " over " + std::to_string(total_) +
            "): refusing to resume");
      }
      if (scan.dropped_bytes > 0) {
        // Heal the kill -9 wound on disk, so workers append after the last
        // complete record and the strict final replay sees a clean file.
        std::error_code ec;
        const auto size = fs::file_size(path, ec);
        if (!ec && size >= scan.dropped_bytes) {
          fs::resize_file(path, size - scan.dropped_bytes, ec);
        }
        if (ec) {
          throw std::runtime_error(path +
                                   ": cannot truncate half-written record");
        }
        note(path + ": dropped " + std::to_string(scan.dropped_bytes) +
             " bytes of a half-written record");
      }
      for (const JournalRecord& record : scan.records) {
        if (record.fingerprint !=
            scenario_fingerprint(spec_.cells[record.index])) {
          throw std::runtime_error(
              path + ": cell " + std::to_string(record.index) +
              " fingerprint disagrees with this grid's cell: the journal was "
              "not produced from this grid");
        }
        if (completed_[record.index]) {
          throw std::runtime_error(
              path + ": cell " + std::to_string(record.index) +
              " is already journaled elsewhere — duplicate coverage");
        }
        completed_[record.index] = true;
        ++completed_count_;
        ++resumed_;
      }
    }
    if (resumed_ > 0) {
      note("resumed " + std::to_string(resumed_) + "/" +
           std::to_string(total_) + " cells from " + options_.journal_dir);
    }
  }

  void spawn_worker(int slot) {
    int cmd[2];
    int ack[2];
    if (pipe(cmd) != 0 || pipe(ack) != 0) {
      throw std::runtime_error("orchestrator: pipe() failed: " +
                               std::string(std::strerror(errno)));
    }
    const pid_t pid = fork();
    if (pid < 0) {
      throw std::runtime_error("orchestrator: fork() failed: " +
                               std::string(std::strerror(errno)));
    }
    if (pid == 0) {
      close(cmd[1]);
      close(ack[0]);
      worker_main(spec_, options_, slot, cmd[0], ack[1]);  // never returns
    }
    close(cmd[0]);
    close(ack[1]);
    Worker w;
    w.pid = pid;
    w.cmd_fd = cmd[1];
    w.ack_fd = ack[0];
    w.slot = slot;
    w.alive = true;
    workers_.push_back(w);
    obs::count("orchestrator.workers_spawned");
    obs::Tracer& tracer = obs::Tracer::instance();
    if (tracer.active()) {
      tracer.instant("spawn worker " + std::to_string(slot), "worker", slot);
    }
  }

  // The most expensive cell that is ready to run right now, if any.
  std::optional<std::size_t> take_ready_cell(Clock::time_point now) {
    std::size_t best = retries_.size();
    for (std::size_t k = 0; k < retries_.size(); ++k) {
      if (retries_[k].not_before > now) continue;
      if (best == retries_.size() ||
          estimated_cost(spec_.cells[retries_[k].index]) >
              estimated_cost(spec_.cells[retries_[best].index])) {
        best = k;
      }
    }
    if (best != retries_.size()) {
      const std::size_t index = retries_[best].index;
      retries_.erase(retries_.begin() +
                     static_cast<std::ptrdiff_t>(best));
      return index;
    }
    if (!pending_.empty()) {
      const std::size_t index = pending_.front();
      pending_.erase(pending_.begin());
      return index;
    }
    return std::nullopt;
  }

  void dispatch(Clock::time_point now) {
    for (Worker& w : workers_) {
      if (!w.alive || w.busy) continue;
      const std::optional<std::size_t> cell = take_ready_cell(now);
      if (!cell.has_value()) return;
      w.busy = true;
      w.cell = *cell;
      w.attempt = attempts_[*cell] + 1;
      w.started = now;
      w.timed_out = false;
      obs::count("orchestrator.dispatches");
      const std::string msg = "R " + std::to_string(w.cell) + " " +
                              std::to_string(w.attempt) + "\n";
      std::size_t off = 0;
      while (off < msg.size()) {
        const ssize_t n =
            write(w.cmd_fd, msg.data() + off, msg.size() - off);
        if (n <= 0) break;  // dead worker: waitpid will reclaim the cell
        off += static_cast<std::size_t>(n);
      }
    }
  }

  void on_done(Worker& w, std::size_t index, double wall_s,
               std::int64_t peak_rss_bytes) {
    w.busy = false;
    attempts_.erase(index);
    if (!completed_[index]) {
      completed_[index] = true;
      ++completed_count_;
      ++executed_;
      executed_cost_ += estimated_cost(spec_.cells[index]);
      obs::count("orchestrator.cells_completed");
      if (metrics_.is_open()) {
        metrics_ << "{\"event\": \"cell\", \"index\": " << index
                 << ", \"worker\": " << w.slot
                 << ", \"attempt\": " << w.attempt << ", \"wall_s\": ";
        json_number(metrics_, wall_s);
        metrics_ << ", \"peak_rss_bytes\": " << peak_rss_bytes << "}\n";
        metrics_.flush();
      }
      obs::Tracer& tracer = obs::Tracer::instance();
      if (tracer.active()) {
        // The cell's span occupies its worker slot's lane, from dispatch
        // to ack.
        const auto begin_us =
            std::chrono::duration_cast<std::chrono::microseconds>(w.started -
                                                                  start_)
                .count();
        const auto end_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                Clock::now() - start_)
                                .count();
        tracer.complete("cell " + std::to_string(index), "cell", begin_us,
                        end_us - begin_us, w.slot);
      }
    }
    progress_line(false);
    if (options_.halt_after_cells > 0 &&
        executed_ >= options_.halt_after_cells) {
      halt();
    }
  }

  void on_fail(std::size_t index, const std::string& error) {
    const int tries = ++attempts_[index];
    if (tries >= options_.max_attempts) {
      poisoned_.push_back({index, tries, error});
      poisoned_flag_[index] = true;
      obs::count("orchestrator.cells_poisoned");
      if (metrics_.is_open()) {
        metrics_ << "{\"event\": \"poison\", \"index\": " << index
                 << ", \"attempts\": " << tries << ", \"error\": ";
        write_json_string(metrics_, error);
        metrics_ << "}\n";
        metrics_.flush();
      }
      note("cell " + std::to_string(index) + " poisoned after " +
           std::to_string(tries) + " attempts: " + error);
      return;
    }
    obs::count("orchestrator.retries");
    if (metrics_.is_open()) {
      metrics_ << "{\"event\": \"retry\", \"index\": " << index
               << ", \"attempt\": " << tries << ", \"error\": ";
      write_json_string(metrics_, error);
      metrics_ << "}\n";
      metrics_.flush();
    }
    obs::Tracer& tracer = obs::Tracer::instance();
    if (tracer.active()) {
      tracer.instant("retry cell " + std::to_string(index), "fault",
                     obs::Tracer::current_lane());
    }
    const double backoff =
        options_.retry_backoff_s * static_cast<double>(1 << (tries - 1));
    RetryEntry retry;
    retry.index = index;
    retry.not_before =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(backoff));
    retries_.push_back(retry);
    note("cell " + std::to_string(index) + " attempt " +
         std::to_string(tries) + " failed (" + error + "); retrying in " +
         format_double(backoff, 2) + " s");
  }

  void process_acks(Worker& w) {
    std::string::size_type at;
    while ((at = w.buffer.find('\n')) != std::string::npos) {
      const std::string line = w.buffer.substr(0, at);
      w.buffer.erase(0, at + 1);
      if (line.empty()) continue;
      if (line[0] == 'S') {
        // Worker's parting registry snapshot (already compact JSON).
        if (metrics_.is_open() && line.size() > 2) {
          metrics_ << "{\"event\": \"worker_summary\", \"worker\": " << w.slot
                   << ", \"registry\": " << line.substr(2) << "}\n";
          metrics_.flush();
        }
        continue;
      }
      std::istringstream is(line);
      char tag = 0;
      std::size_t index = 0;
      is >> tag >> index;
      if (!is || (tag != 'D' && tag != 'F')) continue;
      if (tag == 'D') {
        // Extended ack under record_runtime: "D <idx> <wall_s> <rss>".
        double wall_s = 0.0;
        std::int64_t peak_rss_bytes = 0;
        is >> wall_s >> peak_rss_bytes;
        on_done(w, index, wall_s, peak_rss_bytes);
        if (halted_) return;
      } else {
        std::string error;
        std::getline(is, error);
        if (!error.empty() && error.front() == ' ') error.erase(0, 1);
        w.busy = false;
        on_fail(index, error.empty() ? "cell failed" : error);
      }
    }
  }

  // A dead worker's journal is the truth about what it finished: anything
  // journaled before the crash counts as done (re-running it would journal
  // a duplicate record); only a cell that never reached the journal is
  // retried.
  void handle_death(Worker& w, int status) {
    w.alive = false;
    close(w.cmd_fd);
    close(w.ack_fd);
    w.cmd_fd = w.ack_fd = -1;
    obs::count("orchestrator.worker_deaths");
    obs::Tracer& tracer = obs::Tracer::instance();
    if (tracer.active()) {
      tracer.instant("worker " + std::to_string(w.slot) + " died", "worker",
                     w.slot);
    }

    const std::string path =
        options_.journal_dir + "/" + journal_file_name(w.slot);
    std::error_code ec;
    if (fs::exists(path, ec)) {
      JournalScan scan = read_journal_file(path, /*allow_truncated_tail=*/true);
      if (scan.dropped_bytes > 0) {
        const auto size = fs::file_size(path, ec);
        if (!ec && size >= scan.dropped_bytes) {
          fs::resize_file(path, size - scan.dropped_bytes, ec);
        }
      }
      for (const JournalRecord& record : scan.records) {
        if (completed_[record.index]) continue;
        completed_[record.index] = true;
        ++completed_count_;
        ++executed_;
        executed_cost_ += estimated_cost(spec_.cells[record.index]);
        attempts_.erase(record.index);
        if (w.busy && w.cell == record.index) w.busy = false;
      }
    }
    if (w.busy) {
      const std::string error =
          w.timed_out ? "cell timed out after " +
                            format_double(options_.cell_timeout_s, 1) +
                            " s; worker killed"
                      : describe_status(status);
      on_fail(w.cell, error);
      w.busy = false;
    }

    const std::size_t live = live_workers();
    const std::size_t remaining =
        pending_.size() + retries_.size() + inflight();
    if (!halted_ && remaining > 0 && live < remaining) {
      spawn_worker(w.slot);  // reuse the slot: append to the same journal
    }
  }

  void reap(bool block) {
    for (;;) {
      int status = 0;
      const pid_t pid = waitpid(-1, &status, block ? 0 : WNOHANG);
      if (pid <= 0) return;
      for (Worker& w : workers_) {
        if (w.alive && w.pid == pid) {
          handle_death(w, status);
          break;
        }
      }
      if (block && live_workers() == 0) return;
    }
  }

  void enforce_timeouts(Clock::time_point now) {
    if (options_.cell_timeout_s <= 0.0) return;
    const auto limit = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(options_.cell_timeout_s));
    for (Worker& w : workers_) {
      if (w.alive && w.busy && !w.timed_out && now - w.started > limit) {
        w.timed_out = true;
        kill(w.pid, SIGKILL);  // reaped as an ordinary death next pass
      }
    }
  }

  void event_loop() {
    while (!halted_ &&
           completed_count_ + poisoned_.size() < total_) {
      const Clock::time_point now = Clock::now();
      dispatch(now);

      std::vector<pollfd> fds;
      std::vector<Worker*> by_fd;
      for (Worker& w : workers_) {
        if (w.alive && w.ack_fd >= 0) {
          fds.push_back({w.ack_fd, POLLIN, 0});
          by_fd.push_back(&w);
        }
      }
      if (fds.empty() && pending_.empty() && retries_.empty()) {
        // Nothing running and nothing runnable: every remaining cell is
        // poisoned (counted) or the loop condition would have exited.
        return;
      }
      (void)poll(fds.empty() ? nullptr : fds.data(),
                 static_cast<nfds_t>(fds.size()), 100);
      for (std::size_t k = 0; k < fds.size(); ++k) {
        if ((fds[k].revents & (POLLIN | POLLHUP)) == 0) continue;
        char buf[4096];
        const ssize_t n = read(fds[k].fd, buf, sizeof buf);
        if (n > 0) {
          by_fd[k]->buffer.append(buf, static_cast<std::size_t>(n));
          process_acks(*by_fd[k]);
          if (halted_) return;
        }
      }
      reap(/*block=*/false);
      enforce_timeouts(Clock::now());
    }
  }

  // The halt hook: SIGKILL everything mid-run, exactly like an operator's
  // kill -9 of the job tree, and stop without assembling.
  void halt() {
    halted_ = true;
    for (Worker& w : workers_) {
      if (w.alive) kill(w.pid, SIGKILL);
    }
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      int status = 0;
      waitpid(w.pid, &status, 0);
      w.alive = false;
      close(w.cmd_fd);
      close(w.ack_fd);
    }
  }

  void shutdown_workers() {
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      std::size_t off = 0;
      const std::string quit = "Q\n";
      while (off < quit.size()) {
        const ssize_t n =
            write(w.cmd_fd, quit.data() + off, quit.size() - off);
        if (n <= 0) break;
        off += static_cast<std::size_t>(n);
      }
      close(w.cmd_fd);
      w.cmd_fd = -1;
    }
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      // Drain the ack pipe to EOF before reaping: a quitting worker's last
      // write is its "S" registry snapshot (record_runtime runs).
      if (w.ack_fd >= 0) {
        char buf[4096];
        for (;;) {
          const ssize_t n = read(w.ack_fd, buf, sizeof buf);
          if (n <= 0) break;
          w.buffer.append(buf, static_cast<std::size_t>(n));
        }
        process_acks(w);
      }
      int status = 0;
      waitpid(w.pid, &status, 0);
      w.alive = false;
      if (w.ack_fd >= 0) close(w.ack_fd);
    }
  }

  SweepResult assemble() {
    std::vector<ShardResult> shards;
    for (const std::string& path :
         list_journal_files(options_.journal_dir)) {
      // Strict scan: after a healthy run (and tail truncation on resume)
      // every journal must replay cleanly, or the merge refuses.
      shards.push_back(shard_from_journal(
          read_journal_file(path, /*allow_truncated_tail=*/false)));
    }
    if (shards.empty()) {
      // An empty grid orchestrates to an empty sweep.
      SweepResult empty;
      empty.fingerprint = fingerprint_;
      return empty;
    }
    SweepResult merged = merge_shards(shards);
    verify_sweep_result(merged, spec_);
    return merged;
  }

  std::size_t live_workers() const {
    std::size_t n = 0;
    for (const Worker& w : workers_) {
      if (w.alive) ++n;
    }
    return n;
  }

  std::size_t inflight() const {
    std::size_t n = 0;
    for (const Worker& w : workers_) {
      if (w.alive && w.busy) ++n;
    }
    return n;
  }

  void note(const std::string& message) {
    if (!options_.progress) return;
    if (line_active_) {
      // A \r-rewritten progress line is on the terminal row; move past it
      // so the note does not splice into it.
      out_ << "\n";
      line_active_ = false;
    }
    out_ << "orchestrate: " << message << "\n";
  }

  void progress_line(bool final_line) {
    // The metrics stream gets its own throttled progress events even when
    // terminal progress is off.
    const Clock::time_point now = Clock::now();
    if (metrics_.is_open() &&
        (final_line ||
         now - last_metrics_progress_ >= std::chrono::milliseconds(500))) {
      last_metrics_progress_ = now;
      metrics_ << "{\"event\": \"progress\", \"completed\": "
               << completed_count_ << ", \"total\": " << total_
               << ", \"poisoned\": " << poisoned_.size()
               << ", \"elapsed_s\": ";
      json_number(metrics_,
                  std::chrono::duration<double>(now - start_).count());
      metrics_ << "}\n";
      metrics_.flush();
    }
    if (!options_.progress) return;
    // A real terminal gets a \r-rewritten live line twice a second; a
    // redirected stderr (CI) gets a plain line every few seconds so logs
    // stay readable instead of accumulating carriage-return spam.
    const auto throttle = tty_ ? std::chrono::milliseconds(500)
                               : std::chrono::milliseconds(5000);
    if (!final_line && now - last_progress_ < throttle) return;
    last_progress_ = now;
    std::ostringstream line;
    line << "orchestrate: " << completed_count_ << "/" << total_ << " cells";
    if (!poisoned_.empty()) line << " (" << poisoned_.size() << " poisoned)";
    if (!final_line) {
      std::vector<double> remaining;
      for (std::size_t i = 0; i < total_; ++i) {
        if (!completed_[i] && !poisoned_flag_[i]) {
          remaining.push_back(estimated_cost(spec_.cells[i]));
        }
      }
      const std::size_t live = std::max<std::size_t>(1, live_workers());
      const double elapsed =
          std::chrono::duration<double>(now - start_).count();
      if (executed_cost_ > 0.0 && elapsed > 0.0 && !remaining.empty()) {
        // ETA = LPT makespan of what's left over the live workers, at the
        // per-worker rate this run has actually been retiring cost.
        const double rate =
            executed_cost_ / elapsed / static_cast<double>(live);
        const double eta =
            lpt_makespan(std::move(remaining), static_cast<int>(live)) / rate;
        line << ", ~" << format_double(eta, 1) << " s left on " << live
             << " worker" << (live == 1 ? "" : "s");
      }
    }
    if (tty_) {
      // Rewrite in place; \x1b[K clears the stale tail of a longer
      // previous line.  The final line is committed with a newline.
      out_ << '\r' << line.str() << "\x1b[K";
      if (final_line) out_ << '\n';
      out_.flush();
      line_active_ = !final_line;
    } else {
      out_ << line.str() << "\n";
    }
  }

  const SweepSpec& spec_;
  const OrchestratorOptions& options_;
  const std::size_t total_;
  std::vector<bool> completed_;
  std::vector<bool> poisoned_flag_;
  const std::uint64_t fingerprint_;
  std::ostream& out_;
  const bool tty_;
  bool line_active_ = false;  // a \r-rewritten line is on the terminal row
  std::ofstream metrics_;

  std::vector<Worker> workers_;
  std::vector<std::size_t> pending_;  // longest-first
  std::vector<RetryEntry> retries_;
  std::unordered_map<std::size_t, int> attempts_;
  std::vector<PoisonedCell> poisoned_;
  std::size_t completed_count_ = 0;
  std::size_t resumed_ = 0;
  std::size_t executed_ = 0;
  double executed_cost_ = 0.0;
  bool halted_ = false;
  Clock::time_point start_ = Clock::now();
  Clock::time_point last_progress_ = Clock::time_point::min();
  Clock::time_point last_metrics_progress_ = Clock::time_point::min();
};

}  // namespace

OrchestrateOutcome orchestrate_sweep(const SweepSpec& spec,
                                     const OrchestratorOptions& options) {
  Coordinator coordinator(spec, options);
  return coordinator.run();
}

// --- journal IO ----------------------------------------------------------

std::string journal_file_name(int journal_id) {
  return "shard_" + std::to_string(journal_id) + ".journal.jsonl";
}

std::vector<std::string> list_journal_files(const std::string& dir) {
  std::vector<std::pair<long, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kPrefix = "shard_";
    constexpr std::string_view kSuffix = ".journal.jsonl";
    if (name.size() <= kPrefix.size() + kSuffix.size()) continue;
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
        0) {
      continue;
    }
    const std::string id =
        name.substr(kPrefix.size(), name.size() - kPrefix.size() -
                                        kSuffix.size());
    if (id.empty() || id.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::stol(id), entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [id, path] : found) paths.push_back(std::move(path));
  return paths;
}

void write_journal_header(std::ostream& os, const SweepSpec& spec,
                          int journal_id) {
  os << "{\"schema\": \"" << kJournalSchema << "\", \"sweep_fingerprint\": \""
     << sweep_fingerprint(spec) << "\", \"total_cells\": " << spec.cells.size()
     << ", \"journal\": " << journal_id << "}\n";
}

void write_journal_record(std::ostream& os, const JournalRecord& record) {
  os << "{\"index\": " << record.index << ", \"fingerprint\": \""
     << record.fingerprint << "\", \"result\": ";
  write_scenario_result_json(os, record.result);
  os << "}\n";
}

JournalScan read_journal(std::string_view text, const std::string& label,
                         bool allow_truncated_tail) {
  JournalScan scan;
  bool have_header = false;
  std::vector<bool> seen;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      // Unterminated tail: the one wound an append-only journal can take
      // from kill -9 — recoverable on resume, fatal on strict replay.
      const std::size_t dropped = text.size() - pos;
      if (!allow_truncated_tail) {
        throw std::runtime_error(
            label + ": truncated final record (" + std::to_string(dropped) +
            " bytes cut mid-write); re-run the orchestrator to recover");
      }
      scan.dropped_bytes = dropped;
      break;
    }
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line.empty()) continue;

    JsonValue doc;
    try {
      doc = JsonValue::parse(line);
    } catch (const std::exception& e) {
      throw std::runtime_error(label + ": line " + std::to_string(line_no) +
                               ": corrupt journal record: " + e.what());
    }
    if (!have_header) {
      const std::string where = label + ": line " + std::to_string(line_no);
      const std::string& schema = doc.at("schema").as_string();
      if (schema != kJournalSchema) {
        throw std::runtime_error(where + ": journal schema \"" + schema +
                                 "\", expected \"" + kJournalSchema + "\"");
      }
      scan.sweep_fingerprint =
          parse_u64(doc.at("sweep_fingerprint").as_string(), where);
      scan.total_cells = parse_size(doc.at("total_cells"), where);
      scan.journal_id =
          static_cast<int>(parse_size(doc.at("journal"), where));
      seen.assign(scan.total_cells, false);
      have_header = true;
      continue;
    }

    const std::string where = label + ": line " + std::to_string(line_no);
    JournalRecord record;
    record.index = parse_size(doc.at("index"), where);
    record.fingerprint = parse_u64(doc.at("fingerprint").as_string(), where);
    if (record.index >= scan.total_cells) {
      throw std::runtime_error(where + ": cell index " +
                               std::to_string(record.index) +
                               " outside the " +
                               std::to_string(scan.total_cells) +
                               "-cell grid");
    }
    if (seen[record.index]) {
      throw std::runtime_error(where + ": cell " +
                               std::to_string(record.index) +
                               " journaled twice");
    }
    seen[record.index] = true;
    record.result = scenario_result_from_json(doc.at("result"));
    scan.records.push_back(std::move(record));
  }
  if (!have_header) {
    throw std::runtime_error(label + ": missing journal header");
  }
  return scan;
}

JournalScan read_journal_file(const std::string& path,
                              bool allow_truncated_tail) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return read_journal(os.str(), path, allow_truncated_tail);
}

ShardResult shard_from_journal(const JournalScan& scan) {
  std::vector<const JournalRecord*> ordered;
  ordered.reserve(scan.records.size());
  for (const JournalRecord& record : scan.records) {
    ordered.push_back(&record);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const JournalRecord* a, const JournalRecord* b) {
              return a->index < b->index;
            });
  ShardResult shard;
  shard.sweep_fingerprint = scan.sweep_fingerprint;
  shard.total_cells = scan.total_cells;
  shard.partition = "orchestrated";
  shard.cell_indices.reserve(ordered.size());
  shard.cell_fingerprints.reserve(ordered.size());
  shard.cells.reserve(ordered.size());
  for (const JournalRecord* record : ordered) {
    shard.cell_indices.push_back(record->index);
    shard.cell_fingerprints.push_back(record->fingerprint);
    shard.cells.push_back(record->result);
  }
  return shard;
}

}  // namespace sprout

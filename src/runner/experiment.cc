#include "runner/experiment.h"

#include <cassert>
#include <memory>
#include <stdexcept>

#include "app/omniscient.h"
#include "app/video_app.h"
#include "aqm/codel.h"
#include "aqm/pie.h"
#include "cc/compound.h"
#include "cc/cubic.h"
#include "cc/fast.h"
#include "cc/gcc_endpoint.h"
#include "cc/ledbat.h"
#include "cc/tcp_endpoint.h"
#include "cc/vegas.h"
#include "core/endpoint.h"
#include "core/source.h"
#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "sim/relay.h"
#include "sim/simulator.h"
#include "tunnel/tunnel.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sprout {

namespace {

LinkDirection opposite(LinkDirection d) {
  return d == LinkDirection::kDownlink ? LinkDirection::kUplink
                                       : LinkDirection::kDownlink;
}

std::unique_ptr<CongestionControl> make_cc(SchemeId id) {
  switch (id) {
    case SchemeId::kCubic:
    case SchemeId::kCubicCodel:
    case SchemeId::kCubicPie:
      return std::make_unique<CubicCC>();
    case SchemeId::kVegas:
      return std::make_unique<VegasCC>();
    case SchemeId::kCompound:
      return std::make_unique<CompoundCC>();
    case SchemeId::kLedbat:
      return std::make_unique<LedbatCC>();
    case SchemeId::kFast:
      return std::make_unique<FastCC>();
    default:
      throw std::invalid_argument("not a TCP scheme: " + to_string(id));
  }
}

VideoProfile video_profile_for(SchemeId id) {
  switch (id) {
    case SchemeId::kSkype: return skype_profile();
    case SchemeId::kFacetime: return facetime_profile();
    case SchemeId::kHangout: return hangout_profile();
    default:
      throw std::invalid_argument("not a video scheme: " + to_string(id));
  }
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  // Traces: data direction + its twin for feedback.  Generate slightly past
  // the run time so the final window is fully covered.
  const LinkPreset& fwd_preset = config.link;
  const LinkPreset& rev_preset =
      find_link_preset(fwd_preset.network, opposite(fwd_preset.direction));
  FileTraceExperimentConfig on_traces;
  on_traces.scheme = config.scheme;
  on_traces.forward_trace = preset_trace(fwd_preset, config.run_time + sec(2));
  on_traces.reverse_trace = preset_trace(rev_preset, config.run_time + sec(2));
  on_traces.run_time = config.run_time;
  on_traces.warmup = config.warmup;
  on_traces.propagation_delay = config.propagation_delay;
  on_traces.loss_rate = config.loss_rate;
  on_traces.sprout_confidence = config.sprout_confidence;
  on_traces.seed = config.seed;
  on_traces.capture_series = config.capture_series;
  on_traces.series_bin = config.series_bin;
  return run_experiment_on_traces(on_traces);
}

ExperimentResult run_experiment_on_traces(
    const FileTraceExperimentConfig& config) {
  Simulator sim;
  Rng seeder(config.seed);

  Trace fwd_trace = config.forward_trace;
  Trace rev_trace = config.reverse_trace;

  CellsimConfig fwd_cfg;
  fwd_cfg.propagation_delay = config.propagation_delay;
  fwd_cfg.loss_rate = config.loss_rate;
  fwd_cfg.seed = seeder.fork_seed();
  CellsimConfig rev_cfg = fwd_cfg;
  rev_cfg.seed = seeder.fork_seed();

  std::unique_ptr<AqmPolicy> fwd_policy;
  std::unique_ptr<AqmPolicy> rev_policy;
  if (config.scheme == SchemeId::kCubicCodel) {
    fwd_policy = std::make_unique<CodelPolicy>();
    rev_policy = std::make_unique<CodelPolicy>();
  } else if (config.scheme == SchemeId::kCubicPie) {
    fwd_policy = std::make_unique<PiePolicy>(PieParams{}, seeder.fork_seed());
    rev_policy = std::make_unique<PiePolicy>(PieParams{}, seeder.fork_seed());
  }

  RelaySink fwd_egress;
  RelaySink rev_egress;
  CellsimLink fwd_link(sim, std::move(fwd_trace), fwd_cfg, fwd_egress,
                       std::move(fwd_policy));
  CellsimLink rev_link(sim, std::move(rev_trace), rev_cfg, rev_egress,
                       std::move(rev_policy));

  // Scheme wiring.  The owned objects must outlive the simulation run.
  std::unique_ptr<MeasuredSink> measured;
  std::unique_ptr<BulkDataSource> bulk;
  std::unique_ptr<SproutEndpoint> sprout_tx;
  std::unique_ptr<SproutEndpoint> sprout_rx;
  std::unique_ptr<TcpSender> tcp_tx;
  std::unique_ptr<TcpReceiver> tcp_rx;
  std::unique_ptr<VideoSender> video_tx;
  std::unique_ptr<VideoReceiver> video_rx;
  std::unique_ptr<GccSender> gcc_tx;
  std::unique_ptr<GccReceiver> gcc_rx;
  std::unique_ptr<OmniscientSender> omni;

  switch (config.scheme) {
    case SchemeId::kSprout:
    case SchemeId::kSproutEwma:
    case SchemeId::kSproutAdaptive:
    case SchemeId::kSproutMmpp:
    case SchemeId::kSproutEmpirical: {
      SproutParams params;
      params.confidence_percent = config.sprout_confidence;
      SproutVariant variant = SproutVariant::kBayesian;
      switch (config.scheme) {
        case SchemeId::kSproutEwma: variant = SproutVariant::kEwma; break;
        case SchemeId::kSproutAdaptive:
          variant = SproutVariant::kAdaptive;
          break;
        case SchemeId::kSproutMmpp: variant = SproutVariant::kMmpp; break;
        case SchemeId::kSproutEmpirical:
          variant = SproutVariant::kEmpirical;
          break;
        default: break;
      }
      bulk = std::make_unique<BulkDataSource>();
      sprout_tx =
          std::make_unique<SproutEndpoint>(sim, params, variant, 1, bulk.get());
      sprout_rx =
          std::make_unique<SproutEndpoint>(sim, params, variant, 1, nullptr);
      sprout_tx->attach_network(fwd_link);
      sprout_rx->attach_network(rev_link);
      measured = std::make_unique<MeasuredSink>(sim, *sprout_rx);
      fwd_egress.set_target(*measured);
      rev_egress.set_target(*sprout_tx);
      sprout_tx->start();
      sprout_rx->start(params.tick * 7 / 20);  // de-phase the peer clocks
      break;
    }
    case SchemeId::kSkype:
    case SchemeId::kFacetime:
    case SchemeId::kHangout: {
      video_tx = std::make_unique<VideoSender>(
          sim, video_profile_for(config.scheme), 1);
      video_rx = std::make_unique<VideoReceiver>(sim, 1);
      video_tx->attach_network(fwd_link);
      video_rx->attach_report_path(rev_link);
      measured = std::make_unique<MeasuredSink>(sim, *video_rx);
      fwd_egress.set_target(*measured);
      rev_egress.set_target(*video_tx);
      video_tx->start();
      video_rx->start();
      break;
    }
    case SchemeId::kGcc: {
      gcc_tx = std::make_unique<GccSender>(sim, GccProfile{}, 1);
      gcc_rx = std::make_unique<GccReceiver>(sim, GccProfile{}, 1);
      gcc_tx->attach_network(fwd_link);
      gcc_rx->attach_feedback_path(rev_link);
      measured = std::make_unique<MeasuredSink>(sim, *gcc_rx);
      fwd_egress.set_target(*measured);
      rev_egress.set_target(*gcc_tx);
      gcc_tx->start();
      gcc_rx->start();
      break;
    }
    case SchemeId::kCubic:
    case SchemeId::kCubicCodel:
    case SchemeId::kCubicPie:
    case SchemeId::kVegas:
    case SchemeId::kCompound:
    case SchemeId::kFast:
    case SchemeId::kLedbat: {
      tcp_tx = std::make_unique<TcpSender>(sim, make_cc(config.scheme), 1);
      tcp_rx = std::make_unique<TcpReceiver>(sim, 1);
      tcp_tx->attach_network(fwd_link);
      tcp_rx->attach_ack_path(rev_link);
      measured = std::make_unique<MeasuredSink>(sim, *tcp_rx);
      fwd_egress.set_target(*measured);
      rev_egress.set_target(*tcp_tx);
      tcp_tx->start();
      break;
    }
    case SchemeId::kOmniscient: {
      omni = std::make_unique<OmniscientSender>(
          sim, fwd_link.trace(), config.propagation_delay, 1);
      omni->attach_network(fwd_link);
      measured = std::make_unique<MeasuredSink>(sim);
      fwd_egress.set_target(*measured);
      omni->start(TimePoint{}, TimePoint{} + config.run_time);
      break;
    }
  }

  sim.run_until(TimePoint{} + config.run_time);

  const TimePoint from = TimePoint{} + config.warmup;
  const TimePoint to = TimePoint{} + config.run_time;
  const FlowMetrics& m = measured->metrics();

  ExperimentResult r;
  r.throughput_kbps = m.throughput_kbps(from, to);
  r.delay95_ms = m.delay_percentile_ms(95.0, from, to);
  r.omniscient_delay95_ms = omniscient_delay_percentile_ms(
      fwd_link.trace(), 95.0, from, to, config.propagation_delay);
  r.self_inflicted_delay_ms =
      std::max(0.0, r.delay95_ms - r.omniscient_delay95_ms);
  r.mean_delay_ms = m.mean_delay_ms(from, to);
  r.capacity_kbps = link_capacity_kbps(fwd_link.trace(), from, to);
  r.utilization =
      r.capacity_kbps > 0.0 ? r.throughput_kbps / r.capacity_kbps : 0.0;
  r.packets_delivered = fwd_link.delivered_packets();
  r.link_drops = fwd_link.random_drops() + fwd_link.queue_drops();
  if (config.capture_series) {
    r.series = throughput_delay_series(m, TimePoint{}, to, config.series_bin);
    r.capacity_series =
        capacity_series(fwd_link.trace(), TimePoint{}, to, config.series_bin);
  }
  return r;
}

SharedQueueResult run_shared_queue(const SharedQueueConfig& config) {
  if (config.num_flows < 1) {
    throw std::invalid_argument("shared-queue experiment needs >= 1 flow");
  }
  Simulator sim;
  Rng seeder(config.seed);

  const LinkPreset& fwd_preset = config.link;
  const LinkPreset& rev_preset =
      find_link_preset(fwd_preset.network, opposite(fwd_preset.direction));
  Trace fwd_trace = preset_trace(fwd_preset, config.run_time + sec(2));
  Trace rev_trace = preset_trace(rev_preset, config.run_time + sec(2));

  CellsimConfig fwd_cfg;
  fwd_cfg.propagation_delay = config.propagation_delay;
  fwd_cfg.seed = seeder.fork_seed();
  CellsimConfig rev_cfg = fwd_cfg;
  rev_cfg.seed = seeder.fork_seed();

  RelaySink fwd_egress;
  RelaySink rev_egress;
  CellsimLink fwd_link(sim, std::move(fwd_trace), fwd_cfg, fwd_egress);
  CellsimLink rev_link(sim, std::move(rev_trace), rev_cfg, rev_egress);

  DemuxSink fwd_demux;  // data arriving at the receivers
  DemuxSink rev_demux;  // feedback arriving at the senders
  fwd_egress.set_target(fwd_demux);
  rev_egress.set_target(rev_demux);

  // Per-flow endpoint state.  All flows run the same scheme and share both
  // queues; flow ids demux them at the egress.
  struct Flow {
    std::unique_ptr<BulkDataSource> bulk;
    std::unique_ptr<SproutEndpoint> sprout_tx;
    std::unique_ptr<SproutEndpoint> sprout_rx;
    std::unique_ptr<TcpSender> tcp_tx;
    std::unique_ptr<TcpReceiver> tcp_rx;
    std::unique_ptr<VideoSender> video_tx;
    std::unique_ptr<VideoReceiver> video_rx;
    std::unique_ptr<GccSender> gcc_tx;
    std::unique_ptr<GccReceiver> gcc_rx;
    std::unique_ptr<MeasuredSink> measured;
  };
  std::vector<Flow> flows(static_cast<std::size_t>(config.num_flows));

  for (int f = 0; f < config.num_flows; ++f) {
    Flow& flow = flows[static_cast<std::size_t>(f)];
    const std::int64_t id = f + 1;
    switch (config.scheme) {
      case SchemeId::kSprout:
      case SchemeId::kSproutEwma:
      case SchemeId::kSproutAdaptive:
      case SchemeId::kSproutMmpp:
      case SchemeId::kSproutEmpirical: {
        SproutParams params;
        SproutVariant variant = SproutVariant::kBayesian;
        switch (config.scheme) {
          case SchemeId::kSproutEwma: variant = SproutVariant::kEwma; break;
          case SchemeId::kSproutAdaptive:
            variant = SproutVariant::kAdaptive;
            break;
          case SchemeId::kSproutMmpp: variant = SproutVariant::kMmpp; break;
          case SchemeId::kSproutEmpirical:
            variant = SproutVariant::kEmpirical;
            break;
          default: break;
        }
        flow.bulk = std::make_unique<BulkDataSource>();
        flow.sprout_tx = std::make_unique<SproutEndpoint>(
            sim, params, variant, id, flow.bulk.get());
        flow.sprout_rx = std::make_unique<SproutEndpoint>(sim, params, variant,
                                                          id, nullptr);
        flow.sprout_tx->attach_network(fwd_link);
        flow.sprout_rx->attach_network(rev_link);
        flow.measured = std::make_unique<MeasuredSink>(sim, *flow.sprout_rx);
        fwd_demux.route(id, *flow.measured);
        rev_demux.route(id, *flow.sprout_tx);
        // Real peers are never phase-locked: stagger every clock in the
        // fleet (13 and 7 are coprime with 20, spreading phases evenly).
        flow.sprout_tx->start(params.tick * ((f * 13) % 20) / 20);
        flow.sprout_rx->start(params.tick * ((f * 13 + 7) % 20) / 20);
        break;
      }
      case SchemeId::kCubic:
      case SchemeId::kVegas:
      case SchemeId::kCompound:
      case SchemeId::kLedbat:
      case SchemeId::kFast: {
        flow.tcp_tx = std::make_unique<TcpSender>(sim, make_cc(config.scheme), id);
        flow.tcp_rx = std::make_unique<TcpReceiver>(sim, id);
        flow.tcp_tx->attach_network(fwd_link);
        flow.tcp_rx->attach_ack_path(rev_link);
        flow.measured = std::make_unique<MeasuredSink>(sim, *flow.tcp_rx);
        fwd_demux.route(id, *flow.measured);
        rev_demux.route(id, *flow.tcp_tx);
        flow.tcp_tx->start();
        break;
      }
      case SchemeId::kSkype:
      case SchemeId::kFacetime:
      case SchemeId::kHangout: {
        flow.video_tx = std::make_unique<VideoSender>(
            sim, video_profile_for(config.scheme), id);
        flow.video_rx = std::make_unique<VideoReceiver>(sim, id);
        flow.video_tx->attach_network(fwd_link);
        flow.video_rx->attach_report_path(rev_link);
        flow.measured = std::make_unique<MeasuredSink>(sim, *flow.video_rx);
        fwd_demux.route(id, *flow.measured);
        rev_demux.route(id, *flow.video_tx);
        flow.video_tx->start();
        flow.video_rx->start();
        break;
      }
      case SchemeId::kGcc: {
        flow.gcc_tx = std::make_unique<GccSender>(sim, GccProfile{}, id);
        flow.gcc_rx = std::make_unique<GccReceiver>(sim, GccProfile{}, id);
        flow.gcc_tx->attach_network(fwd_link);
        flow.gcc_rx->attach_feedback_path(rev_link);
        flow.measured = std::make_unique<MeasuredSink>(sim, *flow.gcc_rx);
        fwd_demux.route(id, *flow.measured);
        rev_demux.route(id, *flow.gcc_tx);
        flow.gcc_tx->start();
        flow.gcc_rx->start();
        break;
      }
      default:
        throw std::invalid_argument("scheme not supported in shared-queue: " +
                                    to_string(config.scheme));
    }
  }

  sim.run_until(TimePoint{} + config.run_time);

  const TimePoint from = TimePoint{} + config.warmup;
  const TimePoint to = TimePoint{} + config.run_time;
  SharedQueueResult r;
  for (const Flow& flow : flows) {
    const FlowMetrics& m = flow.measured->metrics();
    r.flow_throughput_kbps.push_back(m.throughput_kbps(from, to));
    r.flow_delay95_ms.push_back(m.delay_percentile_ms(95.0, from, to));
    r.aggregate_throughput_kbps += r.flow_throughput_kbps.back();
    r.max_delay95_ms = std::max(r.max_delay95_ms, r.flow_delay95_ms.back());
  }
  r.jain_index = jain_fairness(r.flow_throughput_kbps);
  r.capacity_kbps = link_capacity_kbps(fwd_link.trace(), from, to);
  r.aggregate_utilization =
      r.capacity_kbps > 0.0 ? r.aggregate_throughput_kbps / r.capacity_kbps
                            : 0.0;
  return r;
}

TunnelContentionResult run_tunnel_contention(
    const TunnelContentionConfig& config) {
  Simulator sim;
  Rng seeder(config.seed);

  const LinkPreset& down_preset =
      find_link_preset(config.network, LinkDirection::kDownlink);
  const LinkPreset& up_preset =
      find_link_preset(config.network, LinkDirection::kUplink);
  Trace down_trace = preset_trace(down_preset, config.run_time + sec(2));
  Trace up_trace = preset_trace(up_preset, config.run_time + sec(2));

  CellsimConfig down_cfg;
  down_cfg.propagation_delay = config.propagation_delay;
  down_cfg.seed = seeder.fork_seed();
  CellsimConfig up_cfg = down_cfg;
  up_cfg.seed = seeder.fork_seed();

  RelaySink down_egress;
  RelaySink up_egress;
  CellsimLink down_link(sim, std::move(down_trace), down_cfg, down_egress);
  CellsimLink up_link(sim, std::move(up_trace), up_cfg, up_egress);

  constexpr std::int64_t kCubicFlow = 1;
  constexpr std::int64_t kSkypeFlow = 2;

  // Client endpoints (server side sends; mobile side receives).
  std::unique_ptr<TunnelEndpoint> server_tunnel;
  std::unique_ptr<TunnelEndpoint> mobile_tunnel;

  ByteCount client_mtu = kMtuBytes;
  if (config.via_tunnel) {
    SproutParams params;
    server_tunnel = std::make_unique<TunnelEndpoint>(
        sim, params, SproutVariant::kBayesian, 100);
    mobile_tunnel = std::make_unique<TunnelEndpoint>(
        sim, params, SproutVariant::kBayesian, 100);
    client_mtu = server_tunnel->client_mtu();
  }

  TcpSender tcp_tx(sim, std::make_unique<CubicCC>(), kCubicFlow, client_mtu);
  TcpReceiver tcp_rx(sim, kCubicFlow);
  VideoProfile skype = skype_profile();
  skype.max_packet_bytes = client_mtu;
  VideoSender video_tx(sim, skype, kSkypeFlow);
  VideoReceiver video_rx(sim, kSkypeFlow);

  MeasuredSink measured_cubic(sim, tcp_rx);
  MeasuredSink measured_skype(sim, video_rx);

  DemuxSink down_demux;  // traffic arriving at the mobile
  down_demux.route(kCubicFlow, measured_cubic);
  down_demux.route(kSkypeFlow, measured_skype);
  DemuxSink up_demux;  // feedback arriving at the server
  up_demux.route(kCubicFlow, tcp_tx);
  up_demux.route(kSkypeFlow, video_tx);

  if (config.via_tunnel) {
    server_tunnel->attach_network(down_link);
    mobile_tunnel->attach_network(up_link);
    down_egress.set_target(mobile_tunnel->network_sink());
    up_egress.set_target(server_tunnel->network_sink());
    // Server-side clients feed the tunnel; mobile-side egress demuxes.
    tcp_tx.attach_network(server_tunnel->ingress());
    video_tx.attach_network(server_tunnel->ingress());
    mobile_tunnel->set_egress(kCubicFlow, measured_cubic);
    mobile_tunnel->set_egress(kSkypeFlow, measured_skype);
    // Feedback from the mobile side rides the tunnel back.
    tcp_rx.attach_ack_path(mobile_tunnel->ingress());
    video_rx.attach_report_path(mobile_tunnel->ingress());
    server_tunnel->set_egress(kCubicFlow, tcp_tx);
    server_tunnel->set_egress(kSkypeFlow, video_tx);
    server_tunnel->start();
    mobile_tunnel->start();
  } else {
    tcp_tx.attach_network(down_link);
    video_tx.attach_network(down_link);
    down_egress.set_target(down_demux);
    tcp_rx.attach_ack_path(up_link);
    video_rx.attach_report_path(up_link);
    up_egress.set_target(up_demux);
  }

  tcp_tx.start();
  video_tx.start();
  video_rx.start();

  sim.run_until(TimePoint{} + config.run_time);

  const TimePoint from = TimePoint{} + config.warmup;
  const TimePoint to = TimePoint{} + config.run_time;
  TunnelContentionResult r;
  r.cubic_throughput_kbps = measured_cubic.metrics().throughput_kbps(from, to);
  r.skype_throughput_kbps = measured_skype.metrics().throughput_kbps(from, to);
  r.skype_delay95_ms =
      measured_skype.metrics().delay_percentile_ms(95.0, from, to);
  r.cubic_delay95_ms =
      measured_cubic.metrics().delay_percentile_ms(95.0, from, to);
  return r;
}

}  // namespace sprout

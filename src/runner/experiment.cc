// The definitions themselves may not warn about their own declarations.
#define SPROUT_ALLOW_DEPRECATED_EXPERIMENT_API
#include "runner/experiment.h"

#include <stdexcept>

namespace sprout {

namespace {

void require_topology(const ScenarioSpec& spec, TopologySpec::Kind kind,
                      const char* view) {
  if (spec.topology.kind != kind) {
    throw std::invalid_argument(std::string(view) +
                                " requires a matching topology in the spec");
  }
}

}  // namespace

ExperimentResult run_experiment(const ScenarioSpec& spec,
                                ScenarioCache* cache) {
  require_topology(spec, TopologySpec::Kind::kSingleFlow, "run_experiment");
  ScenarioResult s = run_scenario(spec, cache);
  ExperimentResult r;
  r.throughput_kbps = s.throughput_kbps();
  r.delay95_ms = s.delay95_ms();
  r.omniscient_delay95_ms = s.omniscient_delay95_ms;
  r.self_inflicted_delay_ms = s.self_inflicted_delay_ms();
  r.mean_delay_ms = s.mean_delay_ms();
  r.capacity_kbps = s.capacity_kbps;
  r.utilization = s.utilization();
  r.packets_delivered = s.packets_delivered;
  r.link_drops = s.link_drops;
  if (!s.flows.empty()) r.series = std::move(s.flows.front().series);
  r.capacity_series = std::move(s.capacity_series);
  return r;
}

SharedQueueResult run_shared_queue(const ScenarioSpec& spec,
                                   ScenarioCache* cache) {
  require_topology(spec, TopologySpec::Kind::kSharedQueue, "run_shared_queue");
  // This view narrows to the paper's §7 vocabulary (N identical flows of
  // one scheme); heterogeneous flow lists carry per-flow schemes and
  // activity windows that this result shape cannot express.
  if (!spec.topology.flows.empty()) {
    throw std::invalid_argument(
        "run_shared_queue is the homogeneous view; run heterogeneous flow "
        "lists through run_scenario()");
  }
  const ScenarioResult s = run_scenario(spec, cache);
  SharedQueueResult r;
  for (const FlowResult& f : s.flows) {
    r.flow_throughput_kbps.push_back(f.throughput_kbps);
    r.flow_delay95_ms.push_back(f.delay95_ms);
  }
  r.aggregate_throughput_kbps = s.aggregate_throughput_kbps;
  r.jain_index = s.jain_index;
  r.max_delay95_ms = s.max_delay95_ms;
  r.capacity_kbps = s.capacity_kbps;
  r.aggregate_utilization = s.aggregate_utilization;
  return r;
}

TunnelContentionResult run_tunnel_contention(const ScenarioSpec& spec,
                                             ScenarioCache* cache) {
  require_topology(spec, TopologySpec::Kind::kTunnelContention,
                   "run_tunnel_contention");
  const ScenarioResult s = run_scenario(spec, cache);
  TunnelContentionResult r;
  r.cubic_throughput_kbps = s.flows.at(0).throughput_kbps;
  r.cubic_delay95_ms = s.flows.at(0).delay95_ms;
  r.skype_throughput_kbps = s.flows.at(1).throughput_kbps;
  r.skype_delay95_ms = s.flows.at(1).delay95_ms;
  return r;
}

}  // namespace sprout

#include "runner/scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "app/video_app.h"
#include "aqm/codel.h"
#include "aqm/pie.h"
#include "cc/cubic.h"
#include "cc/tcp_endpoint.h"
#include "core/tick_batcher.h"
#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "obs/metrics.h"
#include "runner/detail.h"
#include "runner/registry.h"
#include "sim/relay.h"
#include "sim/simulator.h"
#include "tunnel/tunnel.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sprout {

// --- LinkSpec / TopologySpec construction -------------------------------

LinkSpec LinkSpec::preset(const LinkPreset& preset) {
  LinkSpec spec;
  spec.source = Source::kPreset;
  spec.network = preset.network;
  spec.direction = preset.direction;
  return spec;
}

LinkSpec LinkSpec::preset(const std::string& network,
                          LinkDirection direction) {
  LinkSpec spec;
  spec.source = Source::kPreset;
  spec.network = network;
  spec.direction = direction;
  return spec;
}

LinkSpec LinkSpec::traces(Trace forward, Trace reverse) {
  LinkSpec spec;
  spec.source = Source::kTraces;
  spec.forward_trace = std::move(forward);
  spec.reverse_trace = std::move(reverse);
  return spec;
}

LinkSpec LinkSpec::trace_files(std::string forward_path,
                               std::string reverse_path) {
  LinkSpec spec;
  spec.source = Source::kTraceFiles;
  spec.forward_path = std::move(forward_path);
  spec.reverse_path = std::move(reverse_path);
  return spec;
}

LinkSpec LinkSpec::synthetic(CellProcessParams forward,
                             CellProcessParams reverse,
                             std::uint64_t forward_seed,
                             std::uint64_t reverse_seed) {
  LinkSpec spec;
  spec.source = Source::kSynthetic;
  spec.forward_process = forward;
  spec.reverse_process = reverse;
  spec.forward_process_seed = forward_seed;
  spec.reverse_process_seed = reverse_seed;
  return spec;
}

LinkSpec LinkSpec::synth(SynthSpec forward, SynthSpec reverse) {
  LinkSpec spec;
  spec.source = Source::kSynth;
  spec.forward_synth = std::move(forward);
  spec.reverse_synth = std::move(reverse);
  return spec;
}

std::string LinkSpec::name() const {
  switch (source) {
    case Source::kPreset:
      return network + " " + to_string(direction);
    case Source::kTraces:
      return "in-memory traces";
    case Source::kTraceFiles:
      return forward_path + " / " + reverse_path;
    case Source::kSynthetic:
      return "synthetic Cox process";
    case Source::kSynth:
      return "synth " + forward_synth.label() + " / " + reverse_synth.label();
  }
  return "link";
}

FlowSpec FlowSpec::of(SchemeId scheme) {
  FlowSpec f;
  f.scheme = scheme;
  return f;
}

FlowSpec FlowSpec::with_params(const SproutParams& params) const {
  FlowSpec f = *this;
  f.sprout_params = params;
  return f;
}

FlowSpec FlowSpec::active(Duration start_time,
                          std::optional<Duration> stop_time) const {
  FlowSpec f = *this;
  f.start = start_time;
  f.stop = stop_time;
  return f;
}

TopologySpec TopologySpec::single_flow() { return TopologySpec{}; }

TopologySpec TopologySpec::shared_queue(int num_flows) {
  TopologySpec t;
  t.kind = Kind::kSharedQueue;
  t.num_flows = num_flows;
  validate_topology(t);
  return t;
}

TopologySpec TopologySpec::heterogeneous_queue(std::vector<FlowSpec> flows) {
  if (flows.empty()) {
    throw std::invalid_argument(
        "heterogeneous shared queue needs a non-empty flow list");
  }
  TopologySpec t;
  t.kind = Kind::kSharedQueue;
  t.num_flows = static_cast<int>(flows.size());
  t.flows = std::move(flows);
  validate_topology(t);
  return t;
}

TopologySpec TopologySpec::tunnel_contention(bool via_tunnel) {
  TopologySpec t;
  t.kind = Kind::kTunnelContention;
  t.via_tunnel = via_tunnel;
  validate_topology(t);
  return t;
}

TopologySpec TopologySpec::tower(TowerSpec spec) {
  TopologySpec t;
  t.kind = Kind::kTower;
  t.tower_spec = std::move(spec);
  validate_topology(t);
  return t;
}

void validate_topology(const TopologySpec& topology) {
  using Kind = TopologySpec::Kind;
  // The precedence rule, uniformly: a non-empty flow list is only
  // meaningful to the shared-queue topology, and num_flows must agree with
  // it.  Silently ignoring either field would let two specs that simulate
  // identically carry different fingerprints — contradictions are
  // rejected, never resolved.
  if (!topology.flows.empty()) {
    if (topology.kind != Kind::kSharedQueue) {
      throw std::invalid_argument(
          "FlowSpec lists are only valid for shared-queue topologies");
    }
    if (topology.num_flows != static_cast<int>(topology.flows.size())) {
      throw std::invalid_argument(
          "topology num_flows disagrees with its flow list; build the spec "
          "with TopologySpec::heterogeneous_queue");
    }
  }
  if (topology.via_tunnel && topology.kind != Kind::kTunnelContention) {
    throw std::invalid_argument(
        "via_tunnel is only valid for tunnel-contention topologies");
  }
  switch (topology.kind) {
    case Kind::kSingleFlow:
      if (topology.num_flows != 1) {
        throw std::invalid_argument("single-flow topology with num_flows != 1");
      }
      break;
    case Kind::kSharedQueue:
      if (topology.num_flows < 1) {
        throw std::invalid_argument("scenario needs >= 1 flow");
      }
      break;
    case Kind::kTunnelContention:
      if (topology.num_flows != 1) {
        throw std::invalid_argument(
            "tunnel contention ignores num_flows; leave it at 1");
      }
      break;
    case Kind::kTower: {
      const TowerSpec& t = topology.tower_spec;
      if (topology.num_flows != 1) {
        throw std::invalid_argument(
            "tower topology ignores num_flows; leave it at 1");
      }
      if (t.num_users < 1) {
        throw std::invalid_argument("tower needs >= 1 initial user");
      }
      if (!(t.arrival_rate_per_s >= 0.0)) {
        throw std::invalid_argument("tower arrival rate must be >= 0");
      }
      if (!(t.mean_session_s >= 0.0)) {
        throw std::invalid_argument("tower mean session must be >= 0");
      }
      if (t.slot <= Duration::zero()) {
        throw std::invalid_argument("tower scheduler slot must be > 0");
      }
      if (t.pf_window < t.slot) {
        throw std::invalid_argument("tower pf_window must be >= slot");
      }
      if (t.hist_bin <= Duration::zero() || t.hist_max < t.hist_bin) {
        throw std::invalid_argument(
            "tower histogram needs bin > 0 and max >= bin");
      }
      if (t.channel.base != SynthSpec::Base::kBrownian &&
          t.channel.base != SynthSpec::Base::kMarkov) {
        throw std::invalid_argument(
            "tower channels must be live models (brownian or markov)");
      }
      if (!t.channel.ops.empty()) {
        throw std::invalid_argument(
            "tower channels take no op chain: the tower steps each user's "
            "rate process live, never materializing a trace");
      }
      validate_synth_spec(t.channel);
      if (t.mix.empty()) {
        throw std::invalid_argument("tower user mix must be non-empty");
      }
      for (const UserMixEntry& e : t.mix) {
        if (!(e.weight > 0.0) || !std::isfinite(e.weight)) {
          throw std::invalid_argument(
              "tower mix weights must be positive and finite: " +
              to_string(e.scheme));
        }
      }
      break;
    }
  }
}

ScenarioSpec single_flow_scenario(SchemeId scheme, const LinkPreset& link) {
  ScenarioSpec spec;
  spec.scheme = scheme;
  spec.link = LinkSpec::preset(link);
  return spec;
}

ScenarioSpec shared_queue_scenario(SchemeId scheme, int num_flows,
                                   const LinkPreset& link) {
  ScenarioSpec spec;
  spec.scheme = scheme;
  spec.link = LinkSpec::preset(link);
  spec.topology = TopologySpec::shared_queue(num_flows);
  return spec;
}

ScenarioSpec heterogeneous_scenario(std::vector<FlowSpec> flows,
                                    const LinkPreset& link) {
  ScenarioSpec spec;
  if (!flows.empty()) spec.scheme = flows.front().scheme;
  spec.link = LinkSpec::preset(link);
  spec.topology = TopologySpec::heterogeneous_queue(std::move(flows));
  return spec;
}

ScenarioSpec tunnel_scenario(const std::string& network, bool via_tunnel) {
  ScenarioSpec spec;
  spec.link = LinkSpec::preset(network, LinkDirection::kDownlink);
  spec.topology = TopologySpec::tunnel_contention(via_tunnel);
  return spec;
}

// --- ScenarioResult single-flow views -----------------------------------

double ScenarioResult::throughput_kbps() const {
  return flows.empty() ? 0.0 : flows.front().throughput_kbps;
}

double ScenarioResult::delay95_ms() const {
  return flows.empty() ? 0.0 : flows.front().delay95_ms;
}

double ScenarioResult::mean_delay_ms() const {
  return flows.empty() ? 0.0 : flows.front().mean_delay_ms;
}

double ScenarioResult::utilization() const {
  return capacity_kbps > 0.0 ? throughput_kbps() / capacity_kbps : 0.0;
}

double ScenarioResult::self_inflicted_delay_ms() const {
  return std::max(0.0, delay95_ms() - omniscient_delay95_ms);
}

double FlowMetricsView::delay95_ms() const {
  if (flow_->delay95_ms > 0.0 || !flow_->delay_hist.configured()) {
    return flow_->delay95_ms;
  }
  return flow_->delay_hist.percentile_ms(95.0);
}

DelayStats FlowMetricsView::delay_stats() const {
  return flow_->delay_hist.configured() ? flow_->delay_hist.stats()
                                        : DelayStats{};
}

FlowMetricsView ScenarioResult::flow_metrics(std::size_t i) const {
  return FlowMetricsView(flows.at(i));
}

DelayStats ScenarioResult::population_delay() const {
  return population_delay_hist.configured() ? population_delay_hist.stats()
                                            : DelayStats{};
}

// --- ScenarioCache ------------------------------------------------------

std::shared_ptr<const Trace> ScenarioCache::trace(
    const std::string& key, const std::function<Trace()>& build) {
  // Counts unconditionally (cold path; tests assert exact deltas through
  // the registry with obs export on or off).
  static obs::Counter& hits =
      obs::Registry::instance().counter("cache.traces.hits");
  static obs::Counter& misses =
      obs::Registry::instance().counter("cache.traces.misses");
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = traces_.find(key);
    if (it != traces_.end()) {
      hits.add();
      return it->second;
    }
  }
  // Build outside the lock: distinct keys materialize concurrently in a
  // sweep.  If two threads race on one key the results are identical
  // (entries are deterministic functions of the key); first insert wins.
  auto built = std::make_shared<const Trace>(build());
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = traces_.emplace(key, std::move(built));
  if (inserted) {
    misses.add();
  } else {
    hits.add();
  }
  return it->second;
}

std::string synthetic_link_key(const CellProcessParams& params,
                               std::uint64_t seed, Duration duration) {
  std::ostringstream os;
  os << "synthetic|" << params.mean_rate_pps << '|' << params.volatility_pps
     << '|' << params.reversion_per_s << '|' << params.max_rate_pps << '|'
     << params.outage_hazard_per_s << '|' << params.outage_min_s << '|'
     << params.outage_alpha << '|' << params.step.count() << '|' << seed
     << '|' << duration.count();
  return os.str();
}

// --- link resolution ----------------------------------------------------

namespace {

LinkDirection opposite(LinkDirection d) {
  return d == LinkDirection::kDownlink ? LinkDirection::kUplink
                                       : LinkDirection::kDownlink;
}

struct ResolvedLink {
  std::shared_ptr<const Trace> forward;
  std::shared_ptr<const Trace> reverse;
};

std::shared_ptr<const Trace> materialize(ScenarioCache* cache,
                                         const std::string& key,
                                         const std::function<Trace()>& build) {
  if (cache != nullptr) return cache->trace(key, build);
  return std::make_shared<const Trace>(build());
}

ResolvedLink resolve_link(const LinkSpec& link, Duration run_time,
                          ScenarioCache* cache) {
  // Preset/synthetic traces are generated slightly past the run time so
  // the final window is fully covered.
  const Duration needed = run_time + sec(2);
  ResolvedLink resolved;
  switch (link.source) {
    case LinkSpec::Source::kPreset: {
      const LinkPreset& fwd = find_link_preset(link.network, link.direction);
      const LinkPreset& rev =
          find_link_preset(link.network, opposite(link.direction));
      const auto key = [&](const LinkPreset& p) {
        return "preset|" + p.name() + "|" + std::to_string(needed.count());
      };
      resolved.forward =
          materialize(cache, key(fwd), [&] { return preset_trace(fwd, needed); });
      resolved.reverse =
          materialize(cache, key(rev), [&] { return preset_trace(rev, needed); });
      break;
    }
    case LinkSpec::Source::kTraces:
      // Non-owning views: the spec outlives the run, so don't copy what
      // may be hundreds of thousands of opportunities per direction.
      resolved.forward = std::shared_ptr<const Trace>(
          std::shared_ptr<const Trace>{}, &link.forward_trace);
      resolved.reverse = std::shared_ptr<const Trace>(
          std::shared_ptr<const Trace>{}, &link.reverse_trace);
      break;
    case LinkSpec::Source::kTraceFiles:
      resolved.forward =
          materialize(cache, "file|" + link.forward_path,
                      [&] { return read_trace_file(link.forward_path); });
      resolved.reverse =
          materialize(cache, "file|" + link.reverse_path,
                      [&] { return read_trace_file(link.reverse_path); });
      break;
    case LinkSpec::Source::kSynthetic:
      resolved.forward = materialize(
          cache,
          synthetic_link_key(link.forward_process, link.forward_process_seed,
                             needed),
          [&] {
            return generate_trace(link.forward_process, needed,
                                  link.forward_process_seed);
          });
      resolved.reverse = materialize(
          cache,
          synthetic_link_key(link.reverse_process, link.reverse_process_seed,
                             needed),
          [&] {
            return generate_trace(link.reverse_process, needed,
                                  link.reverse_process_seed);
          });
      break;
    case LinkSpec::Source::kSynth:
      resolved.forward = materialize(
          cache, synth_key(link.forward_synth, needed),
          [&] { return generate_synth_trace(link.forward_synth, needed); });
      resolved.reverse = materialize(
          cache, synth_key(link.reverse_synth, needed),
          [&] { return generate_synth_trace(link.reverse_synth, needed); });
      break;
  }
  return resolved;
}

// --- generic topology: registry-built flows over two shared links -------

// The per-flow specs a topology resolves to: an explicit FlowSpec list as
// given, the homogeneous shapes as N copies of the scenario's scheme.
std::vector<FlowSpec> effective_flow_specs(const ScenarioSpec& spec) {
  const TopologySpec& topo = spec.topology;
  if (topo.kind == TopologySpec::Kind::kSingleFlow) {
    return {FlowSpec::of(spec.scheme)};
  }
  if (!topo.flows.empty()) return topo.flows;
  if (topo.num_flows < 1) {
    throw std::invalid_argument("scenario needs >= 1 flow");
  }
  return std::vector<FlowSpec>(static_cast<std::size_t>(topo.num_flows),
                               FlowSpec::of(spec.scheme));
}

// Spec validation for one flow of a (possibly heterogeneous) topology.
void validate_flow_spec(const ScenarioSpec& spec, const FlowSpec& flow,
                        const SchemeInfo& scheme) {
  if (spec.topology.kind == TopologySpec::Kind::kSharedQueue &&
      !scheme.shared_queue_capable) {
    throw std::invalid_argument("scheme not supported in shared-queue: " +
                                scheme.name);
  }
  if (flow.start < Duration::zero() || flow.start >= spec.run_time) {
    throw std::invalid_argument("flow start outside [0, run_time): " +
                                scheme.name);
  }
  if (flow.stop.has_value() && *flow.stop <= flow.start) {
    throw std::invalid_argument("flow stop not after its start: " +
                                scheme.name);
  }
  // A flow whose activity window misses the measurement window entirely
  // would report all-zero metrics that silently poison cross-flow
  // aggregates; reject the spec instead.
  const Duration stop = flow.stop.value_or(spec.run_time);
  if (stop <= spec.warmup) {
    throw std::invalid_argument(
        "flow activity window does not overlap the measurement window: " +
        scheme.name);
  }
}

// Non-tower topologies maintain their streaming delay histogram alongside
// the retained record list (ROADMAP 5(b)) with the tower's default
// geometry, so flow_metrics(i).delay_stats() reports the same fixed-bin
// p50/p95/p99/p999 on every topology.
StreamingMetricsConfig delay_hist_config(TimePoint from, TimePoint to) {
  StreamingMetricsConfig cfg;
  cfg.hist_bin = msec(5);
  cfg.hist_max = sec(20);
  cfg.from = from;
  cfg.to = to;
  return cfg;
}

}  // namespace

namespace detail {

// Builds one direction's queue policy.  Called once per direction, forward
// first, so stochastic policies (PIE) fork deterministic per-direction
// seeds in a fixed order; DropTail is the absence of a policy.
std::unique_ptr<AqmPolicy> make_aqm_policy(LinkAqm aqm, Rng& seeder) {
  switch (aqm) {
    case LinkAqm::kAuto:
    case LinkAqm::kDropTail:
      return nullptr;
    case LinkAqm::kCoDel:
      return std::make_unique<CodelPolicy>();
    case LinkAqm::kPie:
      return std::make_unique<PiePolicy>(PieParams{}, seeder.fork_seed());
  }
  return nullptr;
}

// Reconciles the spec's explicit link policy with the policies the flows'
// schemes request.  The queue policy is a property of the LINK, not of any
// one flow: under kAuto it is inferred from the mix (the unique requesting
// scheme wins; two different requests are ambiguous and rejected).  An
// explicit policy wins over silence, but contradicting a flow's own request
// (kPie under a Cubic-CoDel flow) would silently redefine that scheme — a
// conflicting request is rejected instead.
LinkAqm resolve_link_aqm(const ScenarioSpec& spec,
                         const std::vector<const SchemeInfo*>& schemes) {
  const SchemeInfo* requester = nullptr;
  for (const SchemeInfo* s : schemes) {
    if (s->link_aqm == LinkAqm::kAuto) continue;
    if (spec.link_aqm != LinkAqm::kAuto && s->link_aqm != spec.link_aqm) {
      throw std::invalid_argument(
          "explicit link AQM " + to_string(spec.link_aqm) +
          " conflicts with the policy requested by " + s->name);
    }
    if (requester != nullptr && requester->link_aqm != s->link_aqm) {
      throw std::invalid_argument(
          "conflicting link AQM policies in one shared queue: " +
          requester->name + " vs " + s->name);
    }
    requester = s;
  }
  if (spec.link_aqm != LinkAqm::kAuto) return spec.link_aqm;
  return requester != nullptr ? requester->link_aqm : LinkAqm::kDropTail;
}

}  // namespace detail

namespace {

ScenarioResult run_flows(const ScenarioSpec& spec, const ResolvedLink& link) {
  const std::vector<FlowSpec> flow_specs = effective_flow_specs(spec);

  std::vector<const SchemeInfo*> schemes;
  schemes.reserve(flow_specs.size());
  for (const FlowSpec& f : flow_specs) {
    const SchemeInfo& scheme = SchemeRegistry::instance().info(f.scheme);
    validate_flow_spec(spec, f, scheme);
    schemes.push_back(&scheme);
  }

  const LinkAqm link_aqm = detail::resolve_link_aqm(spec, schemes);

  Simulator sim;
  Rng seeder(spec.seed);

  CellsimConfig fwd_cfg;
  fwd_cfg.propagation_delay = spec.propagation_delay_fwd;
  fwd_cfg.loss_rate = spec.loss_rate_fwd;
  fwd_cfg.seed = seeder.fork_seed();
  CellsimConfig rev_cfg = fwd_cfg;
  rev_cfg.propagation_delay = spec.propagation_delay_rev;
  rev_cfg.loss_rate = spec.loss_rate_rev;
  rev_cfg.seed = seeder.fork_seed();

  std::unique_ptr<AqmPolicy> fwd_policy =
      detail::make_aqm_policy(link_aqm, seeder);
  std::unique_ptr<AqmPolicy> rev_policy =
      detail::make_aqm_policy(link_aqm, seeder);

  RelaySink fwd_egress;
  RelaySink rev_egress;
  CellsimLink fwd_link(sim, Trace(*link.forward), fwd_cfg, fwd_egress,
                       std::move(fwd_policy));
  CellsimLink rev_link(sim, Trace(*link.reverse), rev_cfg, rev_egress,
                       std::move(rev_policy));

  DemuxSink fwd_demux;  // data arriving at the receivers
  DemuxSink rev_demux;  // feedback arriving at the senders
  fwd_egress.set_target(fwd_demux);
  rev_egress.set_target(rev_demux);

  SproutParams default_params;
  default_params.confidence_percent = spec.sprout_confidence;
  // In deployment the sender assumes one-way propagation = min RTT / 2;
  // under an asymmetric split that is the mean of the two directions.
  // Symmetric defaults leave this at the historical 20 ms.
  default_params.assumed_propagation =
      (spec.propagation_delay_fwd + spec.propagation_delay_rev) / 2;

  const TimePoint meas_from = TimePoint{} + spec.warmup;
  const TimePoint meas_to = TimePoint{} + spec.run_time;

  // Each flow is measured over its own activity window clipped to the
  // measurement window; cross-flow comparisons use the co-active window,
  // the interval where EVERY flow was live.  Pure functions of the spec,
  // so computable before the run — the streaming histograms and timeline
  // recorders need the windows up front.
  std::vector<TimePoint> flow_from(flow_specs.size());
  std::vector<TimePoint> flow_to(flow_specs.size());
  TimePoint co_from = meas_from;
  TimePoint co_to = meas_to;
  for (std::size_t f = 0; f < flow_specs.size(); ++f) {
    const FlowSpec& fs = flow_specs[f];
    flow_from[f] = std::max(meas_from, TimePoint{} + fs.start);
    flow_to[f] =
        fs.stop.has_value() ? std::min(meas_to, TimePoint{} + *fs.stop)
                            : meas_to;
    co_from = std::max(co_from, flow_from[f]);
    co_to = std::min(co_to, flow_to[f]);
  }
  const bool coactive = co_from < co_to;

  std::vector<StreamingMetricsConfig> delay_cfgs(flow_specs.size());
  for (std::size_t f = 0; f < flow_specs.size(); ++f) {
    delay_cfgs[f] = delay_hist_config(flow_from[f], flow_to[f]);
  }

  // Flight recorders (if asked): one per flow for forecast + delivery
  // columns, plus one link-level recorder whose queue-depth and drop
  // columns finalize() grafts onto every flow's timeline (the queue is a
  // property of the shared link, not of any one flow).
  std::vector<std::unique_ptr<FlowTimelineRecorder>> flow_recs;
  std::unique_ptr<FlowTimelineRecorder> link_rec;
  if (spec.record_timeline) {
    flow_recs.reserve(flow_specs.size());
    for (std::size_t f = 0; f < flow_specs.size(); ++f) {
      flow_recs.push_back(std::make_unique<FlowTimelineRecorder>(
          spec.timeline_bin, TimePoint{}, meas_to));
    }
    link_rec = std::make_unique<FlowTimelineRecorder>(spec.timeline_bin,
                                                      TimePoint{}, meas_to);
    fwd_link.set_timeline_recorder(link_rec.get());
  }

  // Declared before the flows: each SchemeFlow holds references to its
  // gates and (Sprout family) the batcher, so both must outlive the flows
  // at scope exit.
  TickEvolveBatcher evolve_batcher;
  std::vector<std::unique_ptr<GateSink>> gates;
  std::vector<std::unique_ptr<SchemeFlow>> flows;
  flows.reserve(flow_specs.size());
  for (std::size_t f = 0; f < flow_specs.size(); ++f) {
    const FlowSpec& fs = flow_specs[f];
    const std::int64_t id = static_cast<std::int64_t>(f) + 1;
    // A stopping flow's traffic is gated at BOTH link ingresses: after the
    // stop instant neither its data nor its feedback enters a queue.
    PacketSink* fwd_ingress = &fwd_link;
    PacketSink* rev_ingress = &rev_link;
    if (fs.stop.has_value()) {
      const TimePoint close_at = TimePoint{} + *fs.stop;
      gates.push_back(std::make_unique<GateSink>(sim, fwd_link, close_at));
      fwd_ingress = gates.back().get();
      gates.push_back(std::make_unique<GateSink>(sim, rev_link, close_at));
      rev_ingress = gates.back().get();
    }
    FlowContext ctx{sim,
                    fs.sprout_params.value_or(default_params),
                    id,
                    static_cast<int>(f),
                    *fwd_ingress,
                    *rev_ingress,
                    fwd_link.trace(),
                    spec.propagation_delay_fwd,
                    spec.run_time,
                    &evolve_batcher,
                    /*streaming_metrics=*/nullptr,
                    &delay_cfgs[f],
                    spec.record_timeline ? flow_recs[f].get() : nullptr};
    auto flow = schemes[f]->make_flow(ctx);
    fwd_demux.route(id, flow->data_egress());
    if (PacketSink* feedback = flow->feedback_egress()) {
      rev_demux.route(id, *feedback);
    }
    // A flow starting at the origin starts before the event loop runs,
    // exactly as the homogeneous engine always did; a late joiner's clocks
    // begin at its start instant.
    if (fs.start == Duration::zero()) {
      flow->start();
    } else {
      sim.at(TimePoint{} + fs.start, [raw = flow.get()] { raw->start(); });
    }
    flows.push_back(std::move(flow));
  }

  sim.run_until(TimePoint{} + spec.run_time);

  ScenarioResult r;
  r.coactive_from_s = coactive ? to_seconds(co_from.time_since_epoch()) : 0.0;
  r.coactive_to_s = coactive ? to_seconds(co_to.time_since_epoch()) : 0.0;
  r.coactive_capacity_kbps =
      coactive ? link_capacity_kbps(fwd_link.trace(), co_from, co_to) : 0.0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const FlowMetrics& m = flows[f]->metrics();
    const TimePoint from = flow_from[f];
    const TimePoint to = flow_to[f];
    FlowResult fr;
    fr.label = schemes[f]->name;
    fr.scheme = schemes[f]->id;
    fr.active_from_s = to_seconds(from.time_since_epoch());
    fr.active_to_s = to_seconds(to.time_since_epoch());
    fr.throughput_kbps = m.throughput_kbps(from, to);
    fr.delay95_ms = m.delay_percentile_ms(95.0, from, to);
    fr.mean_delay_ms = m.mean_delay_ms(from, to);
    fr.delivered_bytes =
        fwd_demux.delivered_bytes(static_cast<std::int64_t>(f) + 1);
    fr.delay_hist = m.histogram();
    if (spec.record_timeline) {
      fr.timeline = flow_recs[f]->finalize(&fwd_link.trace(), link_rec.get());
    }
    if (coactive) {
      fr.coactive_throughput_kbps = m.throughput_kbps(co_from, co_to);
      fr.capacity_share = r.coactive_capacity_kbps > 0.0
                              ? fr.coactive_throughput_kbps /
                                    r.coactive_capacity_kbps
                              : 0.0;
    }
    if (spec.capture_series) {
      fr.series =
          throughput_delay_series(m, TimePoint{}, meas_to, spec.series_bin);
    }
    // Aggregate as bytes over the MEASUREMENT window: each flow's rate is
    // weighted by its own window length, so staggered flows contribute
    // the bytes delivered inside their activity windows and utilization
    // stays <= 1.  Bytes a stopped flow's standing queue drains after its
    // stop instant are attributed to no flow (they show up in
    // packets_delivered only) — see the FlowResult window note.
    r.aggregate_throughput_kbps +=
        fr.throughput_kbps * (fr.active_to_s - fr.active_from_s) /
        to_seconds(meas_to - meas_from);
    r.max_delay95_ms = std::max(r.max_delay95_ms, fr.delay95_ms);
    r.flows.push_back(std::move(fr));
  }
  if (coactive) {
    std::vector<double> shares;
    shares.reserve(r.flows.size());
    for (const FlowResult& fr : r.flows) {
      shares.push_back(fr.coactive_throughput_kbps);
    }
    r.jain_index = jain_fairness(shares);
  } else {
    // No instant where all flows were live: cross-flow fairness is
    // undefined, and any number here would be fabricated.
    r.jain_index = std::numeric_limits<double>::quiet_NaN();
  }
  r.capacity_kbps = link_capacity_kbps(fwd_link.trace(), meas_from, meas_to);
  r.aggregate_utilization =
      r.capacity_kbps > 0.0 ? r.aggregate_throughput_kbps / r.capacity_kbps
                            : 0.0;
  // The baseline measures the data path only, so it rides the forward
  // propagation; the reverse direction delays feedback, not deliveries.
  r.omniscient_delay95_ms = omniscient_delay_percentile_ms(
      fwd_link.trace(), 95.0, meas_from, meas_to, spec.propagation_delay_fwd);
  r.packets_delivered = fwd_link.delivered_packets();
  r.link_drops = fwd_link.random_drops() + fwd_link.queue_drops();
  if (spec.capture_series) {
    r.capacity_series = capacity_series(fwd_link.trace(), TimePoint{}, meas_to,
                                        spec.series_bin);
  }
  return r;
}

// --- §5.7 tunnel contention ---------------------------------------------

ScenarioResult run_tunnel(const ScenarioSpec& spec, const ResolvedLink& link) {
  Simulator sim;
  Rng seeder(spec.seed);

  CellsimConfig down_cfg;
  down_cfg.propagation_delay = spec.propagation_delay_fwd;
  down_cfg.loss_rate = spec.loss_rate_fwd;
  down_cfg.seed = seeder.fork_seed();
  CellsimConfig up_cfg = down_cfg;
  up_cfg.propagation_delay = spec.propagation_delay_rev;
  up_cfg.loss_rate = spec.loss_rate_rev;
  up_cfg.seed = seeder.fork_seed();

  RelaySink down_egress;
  RelaySink up_egress;
  // kAuto builds no policy here (the contending Cubic/Skype pair requests
  // none); an explicit spec pairs the tunnel scenario with any discipline.
  std::unique_ptr<AqmPolicy> down_policy =
      detail::make_aqm_policy(spec.link_aqm, seeder);
  std::unique_ptr<AqmPolicy> up_policy =
      detail::make_aqm_policy(spec.link_aqm, seeder);
  CellsimLink down_link(sim, Trace(*link.forward), down_cfg, down_egress,
                        std::move(down_policy));
  CellsimLink up_link(sim, Trace(*link.reverse), up_cfg, up_egress,
                      std::move(up_policy));

  constexpr std::int64_t kCubicFlow = 1;
  constexpr std::int64_t kSkypeFlow = 2;

  // Client endpoints (server side sends; mobile side receives).
  std::unique_ptr<TunnelEndpoint> server_tunnel;
  std::unique_ptr<TunnelEndpoint> mobile_tunnel;

  ByteCount client_mtu = kMtuBytes;
  if (spec.topology.via_tunnel) {
    SproutParams params;
    params.confidence_percent = spec.sprout_confidence;
    params.assumed_propagation =
        (spec.propagation_delay_fwd + spec.propagation_delay_rev) / 2;
    server_tunnel = std::make_unique<TunnelEndpoint>(
        sim, params, SproutVariant::kBayesian, 100);
    mobile_tunnel = std::make_unique<TunnelEndpoint>(
        sim, params, SproutVariant::kBayesian, 100);
    client_mtu = server_tunnel->client_mtu();
  }

  TcpSender tcp_tx(sim, std::make_unique<CubicCC>(), kCubicFlow, client_mtu);
  TcpReceiver tcp_rx(sim, kCubicFlow);
  VideoProfile skype = skype_profile();
  skype.max_packet_bytes = client_mtu;
  VideoSender video_tx(sim, skype, kSkypeFlow);
  VideoReceiver video_rx(sim, kSkypeFlow);

  const TimePoint from = TimePoint{} + spec.warmup;
  const TimePoint to = TimePoint{} + spec.run_time;

  MeasuredSink measured_cubic(sim, tcp_rx);
  MeasuredSink measured_skype(sim, video_rx);
  {
    const StreamingMetricsConfig cfg = delay_hist_config(from, to);
    measured_cubic.metrics().enable_histogram(cfg.hist_bin, cfg.hist_max,
                                              cfg.from, cfg.to);
    measured_skype.metrics().enable_histogram(cfg.hist_bin, cfg.hist_max,
                                              cfg.from, cfg.to);
  }

  // Flight recorders (if asked): the contending pair shares the downlink
  // queue, so the link-level recorder's columns are grafted onto both
  // flows' timelines.  Neither flow runs a forecaster, so the forecast
  // column stays zero (via_tunnel's Sprout forecaster belongs to the
  // tunnel, not to either client flow).
  std::unique_ptr<FlowTimelineRecorder> cubic_rec;
  std::unique_ptr<FlowTimelineRecorder> skype_rec;
  std::unique_ptr<FlowTimelineRecorder> tunnel_link_rec;
  if (spec.record_timeline) {
    cubic_rec = std::make_unique<FlowTimelineRecorder>(spec.timeline_bin,
                                                       TimePoint{}, to);
    skype_rec = std::make_unique<FlowTimelineRecorder>(spec.timeline_bin,
                                                       TimePoint{}, to);
    tunnel_link_rec = std::make_unique<FlowTimelineRecorder>(
        spec.timeline_bin, TimePoint{}, to);
    measured_cubic.metrics().set_timeline_recorder(cubic_rec.get());
    measured_skype.metrics().set_timeline_recorder(skype_rec.get());
    down_link.set_timeline_recorder(tunnel_link_rec.get());
  }

  DemuxSink down_demux;  // traffic arriving at the mobile
  down_demux.route(kCubicFlow, measured_cubic);
  down_demux.route(kSkypeFlow, measured_skype);
  DemuxSink up_demux;  // feedback arriving at the server
  up_demux.route(kCubicFlow, tcp_tx);
  up_demux.route(kSkypeFlow, video_tx);

  if (spec.topology.via_tunnel) {
    server_tunnel->attach_network(down_link);
    mobile_tunnel->attach_network(up_link);
    down_egress.set_target(mobile_tunnel->network_sink());
    up_egress.set_target(server_tunnel->network_sink());
    // Server-side clients feed the tunnel; mobile-side egress demuxes.
    tcp_tx.attach_network(server_tunnel->ingress());
    video_tx.attach_network(server_tunnel->ingress());
    mobile_tunnel->set_egress(kCubicFlow, measured_cubic);
    mobile_tunnel->set_egress(kSkypeFlow, measured_skype);
    // Feedback from the mobile side rides the tunnel back.
    tcp_rx.attach_ack_path(mobile_tunnel->ingress());
    video_rx.attach_report_path(mobile_tunnel->ingress());
    server_tunnel->set_egress(kCubicFlow, tcp_tx);
    server_tunnel->set_egress(kSkypeFlow, video_tx);
    server_tunnel->start();
    mobile_tunnel->start();
  } else {
    tcp_tx.attach_network(down_link);
    video_tx.attach_network(down_link);
    down_egress.set_target(down_demux);
    tcp_rx.attach_ack_path(up_link);
    video_rx.attach_report_path(up_link);
    up_egress.set_target(up_demux);
  }

  tcp_tx.start();
  video_tx.start();
  video_rx.start();

  sim.run_until(TimePoint{} + spec.run_time);

  ScenarioResult r;
  r.coactive_from_s = to_seconds(from.time_since_epoch());
  r.coactive_to_s = to_seconds(to.time_since_epoch());
  r.coactive_capacity_kbps = link_capacity_kbps(down_link.trace(), from, to);
  using TunnelFlow = std::tuple<const char*, SchemeId, const MeasuredSink*,
                                const FlowTimelineRecorder*>;
  for (const auto& [label, scheme_id, sink, rec] :
       {TunnelFlow{"Cubic", SchemeId::kCubic, &measured_cubic,
                   cubic_rec.get()},
        TunnelFlow{"Skype", SchemeId::kSkype, &measured_skype,
                   skype_rec.get()}}) {
    const FlowMetrics& m = sink->metrics();
    FlowResult fr;
    fr.label = label;
    fr.scheme = scheme_id;
    fr.active_from_s = to_seconds(from.time_since_epoch());
    fr.active_to_s = to_seconds(to.time_since_epoch());
    fr.throughput_kbps = m.throughput_kbps(from, to);
    fr.delay95_ms = m.delay_percentile_ms(95.0, from, to);
    fr.mean_delay_ms = m.mean_delay_ms(from, to);
    // Tunnel flows never stop early, so the measured sink's lifetime total
    // IS the whole-run ledger the demux keeps in the generic topology.
    fr.delivered_bytes = m.total_bytes();
    fr.delay_hist = m.histogram();
    if (rec != nullptr) {
      fr.timeline = rec->finalize(&down_link.trace(), tunnel_link_rec.get());
    }
    fr.coactive_throughput_kbps = fr.throughput_kbps;
    if (spec.capture_series) {
      fr.series =
          throughput_delay_series(m, TimePoint{}, to, spec.series_bin);
    }
    r.aggregate_throughput_kbps += fr.throughput_kbps;
    r.max_delay95_ms = std::max(r.max_delay95_ms, fr.delay95_ms);
    r.flows.push_back(std::move(fr));
  }
  std::vector<double> shares;
  for (const FlowResult& fr : r.flows) shares.push_back(fr.throughput_kbps);
  r.jain_index = jain_fairness(shares);
  r.capacity_kbps = r.coactive_capacity_kbps;
  for (FlowResult& fr : r.flows) {
    fr.capacity_share = r.capacity_kbps > 0.0
                            ? fr.coactive_throughput_kbps / r.capacity_kbps
                            : 0.0;
  }
  r.aggregate_utilization =
      r.capacity_kbps > 0.0 ? r.aggregate_throughput_kbps / r.capacity_kbps
                            : 0.0;
  r.omniscient_delay95_ms = omniscient_delay_percentile_ms(
      down_link.trace(), 95.0, from, to, spec.propagation_delay_fwd);
  r.packets_delivered = down_link.delivered_packets();
  r.link_drops = down_link.random_drops() + down_link.queue_drops();
  if (spec.capture_series) {
    r.capacity_series =
        capacity_series(down_link.trace(), TimePoint{}, to, spec.series_bin);
  }
  return r;
}

}  // namespace

double scheme_cost_weight(SchemeId scheme) {
  // Wall time per simulated second relative to Cubic, measured on the 60 s
  // Verizon-LTE-downlink single-flow scenario (best of 3 reps, warm trace
  // cache, Release -O2, 2026-08, banded + SIMD inference as shipped).  Raw
  // timings, seconds per 60 simulated seconds: Sprout 0.42, Sprout-EWMA
  // 0.028, Skype 0.009, Facetime 0.010, Hangout 0.010, Cubic 0.040, Vegas
  // 0.025, Compound 0.029, LEDBAT 0.028, Cubic-CoDel 0.022, Omniscient
  // 0.017, GCC 0.010, FAST 0.032, Cubic-PIE 0.027, Sprout-Adaptive 2.41,
  // Sprout-MMPP 0.027, Sprout-Empirical 0.44, NewReno 0.035.  The banded
  // evolve compressed the forecaster-bearing schemes' lead: Sprout fell
  // from 30x Cubic to ~11x and the Adaptive ensemble from 190x to ~60x
  // (Empirical barely moved — its windowed quantiles were never
  // matrix-bound).  They still dominate shard makespans, so LPT plans keyed
  // on these weights remain far better than cell-count balance.  Constants
  // are rounded: they are ordering keys, not wall-clock predictions.
  switch (scheme) {
    case SchemeId::kSprout: return 10.5;
    case SchemeId::kSproutEwma: return 0.7;
    case SchemeId::kSkype: return 0.24;
    case SchemeId::kFacetime: return 0.26;
    case SchemeId::kHangout: return 0.24;
    case SchemeId::kCubic: return 1.0;
    case SchemeId::kVegas: return 0.65;
    case SchemeId::kCompound: return 0.75;
    case SchemeId::kLedbat: return 0.7;
    case SchemeId::kCubicCodel: return 0.55;
    case SchemeId::kOmniscient: return 0.45;
    case SchemeId::kGcc: return 0.25;
    case SchemeId::kFast: return 0.8;
    case SchemeId::kCubicPie: return 0.65;
    case SchemeId::kSproutAdaptive: return 61.0;
    case SchemeId::kSproutMmpp: return 0.7;
    case SchemeId::kSproutEmpirical: return 11.0;
    case SchemeId::kReno: return 0.9;
  }
  return 1.0;
}

double estimated_cost(const ScenarioSpec& spec) {
  // Simulated work scales with how long the event loop runs and with the
  // per-scheme weight of every endpoint pair feeding it.  The tunnel
  // scenario always runs its Cubic + Skype pair, plus a Sprout-weight
  // surcharge when the pair rides SproutTunnel (measured: the tunnel's
  // forecaster costs what a Sprout flow costs); shared queues sum their
  // flow list (or num_flows copies); a single flow is its own weight.
  double weight = 0.0;
  switch (spec.topology.kind) {
    case TopologySpec::Kind::kSingleFlow:
      weight = scheme_cost_weight(spec.scheme);
      break;
    case TopologySpec::Kind::kSharedQueue:
      if (spec.topology.flows.empty()) {
        weight = static_cast<double>(std::max(spec.topology.num_flows, 1)) *
                 scheme_cost_weight(spec.scheme);
      } else {
        for (const FlowSpec& f : spec.topology.flows) {
          weight += scheme_cost_weight(f.scheme);
        }
      }
      break;
    case TopologySpec::Kind::kTunnelContention:
      weight = scheme_cost_weight(SchemeId::kCubic) +
               scheme_cost_weight(SchemeId::kSkype);
      if (spec.topology.via_tunnel) {
        weight += scheme_cost_weight(SchemeId::kSprout);
      }
      break;
    case TopologySpec::Kind::kTower: {
      // Expected user-seconds: each of the expected arrivals (initial
      // population plus Poisson newcomers) contributes its expected session
      // length, clamped to the run; weight each user-second by the mix's
      // mean scheme weight.
      const TowerSpec& t = spec.topology.tower_spec;
      const double run_s = to_seconds(spec.run_time);
      const double session_s = t.mean_session_s > 0.0
                                   ? std::min(t.mean_session_s, run_s)
                                   : run_s;
      const double expected_users =
          static_cast<double>(t.num_users) + t.arrival_rate_per_s * run_s;
      double mean_weight = 0.0;
      double total = 0.0;
      for (const UserMixEntry& e : t.mix) {
        mean_weight += e.weight * scheme_cost_weight(e.scheme);
        total += e.weight;
      }
      mean_weight = total > 0.0 ? mean_weight / total : 1.0;
      return expected_users * session_s * mean_weight;
    }
  }
  return to_seconds(spec.run_time) * weight;
}

ScenarioResult run_scenario(const ScenarioSpec& spec, ScenarioCache* cache) {
  if (spec.propagation_delay_fwd < Duration::zero() ||
      spec.propagation_delay_rev < Duration::zero()) {
    throw std::invalid_argument("propagation delays must be >= 0");
  }
  if (spec.record_timeline && spec.timeline_bin <= Duration::zero()) {
    throw std::invalid_argument(
        "record_timeline needs a positive timeline_bin");
  }
  // All topology-internal consistency rules (flow-list-vs-num_flows
  // precedence, per-kind field constraints) live in validate_topology —
  // the builders ran it at construction, this re-checks hand-assembled
  // specs.
  validate_topology(spec.topology);
  if (spec.topology.kind == TopologySpec::Kind::kTower) {
    if (spec.capture_series) {
      throw std::invalid_argument(
          "capture_series is not supported by the tower topology (streaming "
          "metrics only)");
    }
    if (spec.warmup >= spec.run_time) {
      throw std::invalid_argument("tower warmup must be < run_time");
    }
    return detail::run_tower(spec);
  }
  const ResolvedLink link = resolve_link(spec.link, spec.run_time, cache);
  if (spec.topology.kind == TopologySpec::Kind::kTunnelContention) {
    return run_tunnel(spec, link);
  }
  return run_flows(spec, link);
}

}  // namespace sprout

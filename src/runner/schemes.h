// The scheme registry: every transport the paper evaluates, by id.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace sprout {

enum class SchemeId {
  kSprout,
  kSproutEwma,
  kSkype,
  kFacetime,
  kHangout,
  kCubic,
  kVegas,
  kCompound,
  kLedbat,
  kCubicCodel,
  kOmniscient,
  // Extensions beyond the paper's Figure 7 set:
  kGcc,      // Google/WebRTC congestion control — the comparison §6 promises
  kFast,     // FAST TCP (§6 related work)
  kCubicPie, // Cubic over PIE AQM (in-network alternative to CoDel)
  // §3.1/§7 forecaster extensions (Sprout protocol, different models):
  kSproutAdaptive,   // online model averaging over (σ, λz)
  kSproutMmpp,       // regime-switching (MMPP) link model
  kSproutEmpirical,  // windowed empirical-quantile forecasts
  kReno,     // NewReno AIMD — the classic loss-based baseline (coexistence)
};

[[nodiscard]] std::string to_string(SchemeId id);

// Every SchemeId, in enum order — the canonical list scheme_from_name
// searches and the registry test checks registration against, so a newly
// added scheme that misses this list fails the tier-1 suite instead of
// becoming unreadable from shard files.
[[nodiscard]] const std::vector<SchemeId>& all_scheme_ids();

// Parses the exact strings to_string(SchemeId) produces (shard-file and CLI
// round trips); std::nullopt for anything else.
[[nodiscard]] std::optional<SchemeId> scheme_from_name(const std::string& name);

// In-network queue policy of the emulated link (both directions).
//
// kAuto keeps the historical behavior: the policy is inferred from the flow
// mix (the unique scheme requesting one wins — e.g. Cubic-CoDel alone, or
// Sprout vs Cubic-CoDel — and two different requests in one queue are
// rejected).  Any other value names the policy explicitly, so ANY scheme can
// be paired with ANY queue discipline; an explicit policy that contradicts a
// flow's own request (say kPie under a Cubic-CoDel flow) is rejected rather
// than silently rewriting what that scheme means.
enum class LinkAqm {
  kAuto,      // infer from the flow mix (default; pre-existing semantics)
  kDropTail,  // explicit FIFO tail-drop
  kCoDel,
  kPie,
};

[[nodiscard]] std::string to_string(LinkAqm aqm);

// The nine schemes plotted in Figure 7 (omniscient is the metric baseline,
// not a plotted point).
[[nodiscard]] const std::vector<SchemeId>& figure7_schemes();

// Schemes in the introduction's Table 1 comparison (everything vs Sprout).
[[nodiscard]] const std::vector<SchemeId>& table1_schemes();

// Extension schemes evaluated beyond the paper (GCC, FAST, Cubic-PIE).
[[nodiscard]] const std::vector<SchemeId>& extension_schemes();

// The forecaster family: Sprout variants differing only in the stochastic
// model behind the forecast (bench/ablation_forecaster).
[[nodiscard]] const std::vector<SchemeId>& forecaster_schemes();

// Competitors paired against Sprout in the heterogeneous shared-queue
// coexistence sweeps (bench/table_coexistence): the C2TCP-style question
// of how Sprout fares against loss-based and delay-based TCP plus WebRTC
// in ONE bottleneck queue.
[[nodiscard]] const std::vector<SchemeId>& coexistence_schemes();

}  // namespace sprout

#include "runner/registry.h"

#include <stdexcept>
#include <utility>

#include "app/omniscient.h"
#include "app/video_app.h"
#include "cc/compound.h"
#include "cc/cubic.h"
#include "cc/fast.h"
#include "cc/gcc_endpoint.h"
#include "cc/ledbat.h"
#include "cc/reno.h"
#include "cc/tcp_endpoint.h"
#include "cc/vegas.h"
#include "core/endpoint.h"
#include "core/source.h"

namespace sprout {

SchemeRegistry& SchemeRegistry::instance() {
  static SchemeRegistry registry;
  return registry;
}

void SchemeRegistry::register_scheme(SchemeInfo info) {
  if (!info.make_flow) {
    throw std::invalid_argument("scheme registration without a factory: " +
                                info.name);
  }
  if (find(info.id) != nullptr) {
    throw std::invalid_argument("duplicate scheme registration: " + info.name);
  }
  schemes_.push_back(std::move(info));
}

const SchemeInfo* SchemeRegistry::find(SchemeId id) const {
  for (const SchemeInfo& s : schemes_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

const SchemeInfo& SchemeRegistry::info(SchemeId id) const {
  const SchemeInfo* s = find(id);
  if (s == nullptr) {
    throw std::invalid_argument("scheme not registered: " + to_string(id));
  }
  return *s;
}

std::vector<SchemeId> SchemeRegistry::registered() const {
  std::vector<SchemeId> ids;
  ids.reserve(schemes_.size());
  for (const SchemeInfo& s : schemes_) ids.push_back(s.id);
  return ids;
}

std::unique_ptr<MeasuredSink> make_measured(const FlowContext& ctx,
                                            PacketSink* next) {
  auto sink = next != nullptr ? std::make_unique<MeasuredSink>(ctx.sim, *next)
                              : std::make_unique<MeasuredSink>(ctx.sim);
  if (ctx.streaming_metrics != nullptr) {
    const StreamingMetricsConfig& cfg = *ctx.streaming_metrics;
    sink->metrics().enable_streaming(cfg.hist_bin, cfg.hist_max, cfg.from,
                                     cfg.to);
  } else if (ctx.delay_histogram != nullptr) {
    const StreamingMetricsConfig& cfg = *ctx.delay_histogram;
    sink->metrics().enable_histogram(cfg.hist_bin, cfg.hist_max, cfg.from,
                                     cfg.to);
  }
  sink->metrics().set_timeline_recorder(ctx.timeline);
  return sink;
}

namespace {

// --- Sprout family -----------------------------------------------------

class SproutFlow : public SchemeFlow {
 public:
  SproutFlow(const FlowContext& ctx, SproutVariant variant)
      : params_(ctx.sprout_params),
        flow_index_(ctx.flow_index),
        bulk_(std::make_unique<BulkDataSource>()),
        tx_(std::make_unique<SproutEndpoint>(ctx.sim, params_, variant,
                                             ctx.flow_id, bulk_.get())),
        rx_(std::make_unique<SproutEndpoint>(ctx.sim, params_, variant,
                                             ctx.flow_id, nullptr)),
        measured_(make_measured(ctx, rx_.get())) {
    tx_->attach_network(ctx.forward_link);
    rx_->attach_network(ctx.reverse_link);
    if (ctx.evolve_batcher != nullptr) {
      tx_->set_evolve_batcher(ctx.evolve_batcher);
      rx_->set_evolve_batcher(ctx.evolve_batcher);
    }
    // The rx_ endpoint receives the flow's data, so ITS receiver infers
    // the forward link — that forecast is the one a timeline plots
    // against the forward link's realized capacity.
    if (ctx.timeline != nullptr) {
      rx_->set_forecast_tap(ctx.timeline);
    }
  }

  PacketSink& data_egress() override { return *measured_; }
  PacketSink* feedback_egress() override { return tx_.get(); }

  void start() override {
    // Real peers are never phase-locked: stagger every clock in the fleet
    // (13 and 7 are coprime with 20, spreading phases evenly).  Flow 0
    // reproduces the single-flow phases (tx at 0, rx at 7/20 tick).
    const int f = flow_index_;
    tx_->start(params_.tick * ((f * 13) % 20) / 20);
    rx_->start(params_.tick * ((f * 13 + 7) % 20) / 20);
  }

  const FlowMetrics& metrics() const override { return measured_->metrics(); }

 private:
  SproutParams params_;
  int flow_index_;
  std::unique_ptr<BulkDataSource> bulk_;
  std::unique_ptr<SproutEndpoint> tx_;
  std::unique_ptr<SproutEndpoint> rx_;
  std::unique_ptr<MeasuredSink> measured_;
};

// --- TCP family --------------------------------------------------------

class TcpFlow : public SchemeFlow {
 public:
  TcpFlow(const FlowContext& ctx, std::unique_ptr<CongestionControl> cc)
      : tx_(std::make_unique<TcpSender>(ctx.sim, std::move(cc), ctx.flow_id)),
        rx_(std::make_unique<TcpReceiver>(ctx.sim, ctx.flow_id)),
        measured_(make_measured(ctx, rx_.get())) {
    tx_->attach_network(ctx.forward_link);
    rx_->attach_ack_path(ctx.reverse_link);
  }

  PacketSink& data_egress() override { return *measured_; }
  PacketSink* feedback_egress() override { return tx_.get(); }
  void start() override { tx_->start(); }
  const FlowMetrics& metrics() const override { return measured_->metrics(); }

 private:
  std::unique_ptr<TcpSender> tx_;
  std::unique_ptr<TcpReceiver> rx_;
  std::unique_ptr<MeasuredSink> measured_;
};

// --- Video apps --------------------------------------------------------

class VideoFlow : public SchemeFlow {
 public:
  VideoFlow(const FlowContext& ctx, const VideoProfile& profile)
      : tx_(std::make_unique<VideoSender>(ctx.sim, profile, ctx.flow_id)),
        rx_(std::make_unique<VideoReceiver>(ctx.sim, ctx.flow_id)),
        measured_(make_measured(ctx, rx_.get())) {
    tx_->attach_network(ctx.forward_link);
    rx_->attach_report_path(ctx.reverse_link);
  }

  PacketSink& data_egress() override { return *measured_; }
  PacketSink* feedback_egress() override { return tx_.get(); }

  void start() override {
    tx_->start();
    rx_->start();
  }

  const FlowMetrics& metrics() const override { return measured_->metrics(); }

 private:
  std::unique_ptr<VideoSender> tx_;
  std::unique_ptr<VideoReceiver> rx_;
  std::unique_ptr<MeasuredSink> measured_;
};

// --- GCC (WebRTC) ------------------------------------------------------

class GccFlow : public SchemeFlow {
 public:
  explicit GccFlow(const FlowContext& ctx)
      : tx_(std::make_unique<GccSender>(ctx.sim, GccProfile{}, ctx.flow_id)),
        rx_(std::make_unique<GccReceiver>(ctx.sim, GccProfile{}, ctx.flow_id)),
        measured_(make_measured(ctx, rx_.get())) {
    tx_->attach_network(ctx.forward_link);
    rx_->attach_feedback_path(ctx.reverse_link);
  }

  PacketSink& data_egress() override { return *measured_; }
  PacketSink* feedback_egress() override { return tx_.get(); }

  void start() override {
    tx_->start();
    rx_->start();
  }

  const FlowMetrics& metrics() const override { return measured_->metrics(); }

 private:
  std::unique_ptr<GccSender> tx_;
  std::unique_ptr<GccReceiver> rx_;
  std::unique_ptr<MeasuredSink> measured_;
};

// --- Omniscient baseline ------------------------------------------------

class OmniscientFlow : public SchemeFlow {
 public:
  explicit OmniscientFlow(const FlowContext& ctx)
      : run_time_(ctx.run_time),
        tx_(std::make_unique<OmniscientSender>(
            ctx.sim, ctx.forward_trace, ctx.propagation_delay, ctx.flow_id)),
        measured_(make_measured(ctx, nullptr)) {
    tx_->attach_network(ctx.forward_link);
  }

  PacketSink& data_egress() override { return *measured_; }
  PacketSink* feedback_egress() override { return nullptr; }

  void start() override {
    tx_->start(TimePoint{}, TimePoint{} + run_time_);
  }

  const FlowMetrics& metrics() const override { return measured_->metrics(); }

 private:
  Duration run_time_;
  std::unique_ptr<OmniscientSender> tx_;
  std::unique_ptr<MeasuredSink> measured_;
};

// --- registrations ------------------------------------------------------

SchemeInfo sprout_scheme(SchemeId id, SproutVariant variant) {
  SchemeInfo info;
  info.id = id;
  info.name = to_string(id);
  info.make_flow = [variant](const FlowContext& ctx) {
    return std::make_unique<SproutFlow>(ctx, variant);
  };
  return info;
}

template <typename Cc>
SchemeInfo tcp_scheme(SchemeId id, LinkAqm aqm = LinkAqm::kAuto) {
  SchemeInfo info;
  info.id = id;
  info.name = to_string(id);
  info.link_aqm = aqm;
  info.make_flow = [](const FlowContext& ctx) {
    return std::make_unique<TcpFlow>(ctx, std::make_unique<Cc>());
  };
  return info;
}

SchemeInfo video_scheme(SchemeId id, VideoProfile (*profile)()) {
  SchemeInfo info;
  info.id = id;
  info.name = to_string(id);
  info.make_flow = [profile](const FlowContext& ctx) {
    return std::make_unique<VideoFlow>(ctx, profile());
  };
  return info;
}

// One static registrar per scheme; construction order is the registry's
// presentation order.  Adding a scheme is adding one Registrar here.
struct Registrar {
  explicit Registrar(SchemeInfo info) {
    SchemeRegistry::instance().register_scheme(std::move(info));
  }
};

const Registrar kSprout{sprout_scheme(SchemeId::kSprout,
                                      SproutVariant::kBayesian)};
const Registrar kSproutEwma{sprout_scheme(SchemeId::kSproutEwma,
                                          SproutVariant::kEwma)};
const Registrar kSproutAdaptive{sprout_scheme(SchemeId::kSproutAdaptive,
                                              SproutVariant::kAdaptive)};
const Registrar kSproutMmpp{sprout_scheme(SchemeId::kSproutMmpp,
                                          SproutVariant::kMmpp)};
const Registrar kSproutEmpirical{sprout_scheme(SchemeId::kSproutEmpirical,
                                               SproutVariant::kEmpirical)};

const Registrar kSkype{video_scheme(SchemeId::kSkype, skype_profile)};
const Registrar kFacetime{video_scheme(SchemeId::kFacetime, facetime_profile)};
const Registrar kHangout{video_scheme(SchemeId::kHangout, hangout_profile)};

const Registrar kCubic{tcp_scheme<CubicCC>(SchemeId::kCubic)};
const Registrar kReno{tcp_scheme<RenoCC>(SchemeId::kReno)};
const Registrar kVegas{tcp_scheme<VegasCC>(SchemeId::kVegas)};
const Registrar kCompound{tcp_scheme<CompoundCC>(SchemeId::kCompound)};
const Registrar kLedbat{tcp_scheme<LedbatCC>(SchemeId::kLedbat)};
const Registrar kFast{tcp_scheme<FastCC>(SchemeId::kFast)};
const Registrar kCubicCodel{
    tcp_scheme<CubicCC>(SchemeId::kCubicCodel, LinkAqm::kCoDel)};
const Registrar kCubicPie{
    tcp_scheme<CubicCC>(SchemeId::kCubicPie, LinkAqm::kPie)};

const Registrar kGcc{[] {
  SchemeInfo info;
  info.id = SchemeId::kGcc;
  info.name = to_string(SchemeId::kGcc);
  info.make_flow = [](const FlowContext& ctx) {
    return std::make_unique<GccFlow>(ctx);
  };
  return info;
}()};

const Registrar kOmniscient{[] {
  SchemeInfo info;
  info.id = SchemeId::kOmniscient;
  info.name = to_string(SchemeId::kOmniscient);
  // A clairvoyant sender per flow would let every flow claim every
  // delivery opportunity; the baseline is only defined for one flow.
  info.shared_queue_capable = false;
  info.make_flow = [](const FlowContext& ctx) {
    return std::make_unique<OmniscientFlow>(ctx);
  };
  return info;
}()};

}  // namespace
}  // namespace sprout

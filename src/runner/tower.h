// Tower churn timeline — the deterministic user-lifetime derivation the
// tower runner (runner/tower.cc, dispatched by run_scenario) builds on.
//
// A tower scenario's population is decided BEFORE the event loop runs: one
// pass over a dedicated churn RNG stream yields every user's arrival,
// departure, scheme (drawn from the weighted mix) and channel seed.  The
// timeline is a pure function of (tower spec, run_time, churn_seed), so
// serial, thread-pool and process-sharded sweeps reproduce the same
// population bit-for-bit — the same discipline the sweep fingerprint
// applies to link seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "runner/scenario.h"
#include "util/units.h"

namespace sprout {

// One user's lifetime at the tower.
struct TowerUserSession {
  std::int64_t user_id = 0;  // 1-based; also the flow id on both links
  Duration arrival{};
  Duration departure{};  // clamped to run_time
  SchemeId scheme = SchemeId::kCubic;
  // Seed of this user's channel process, derived from the tower channel
  // spec's seed and the user id (stable under mix/churn parameter edits).
  std::uint64_t channel_seed = 0;
};

// Derives the full churn timeline: ids 1..num_users attach at t = 0, then
// Poisson arrivals (rate arrival_rate_per_s) until run_time, each session
// exponentially distributed with mean mean_session_s (0 = stay to the
// end), departures clamped to run_time.  Sessions are returned in user-id
// order, which is also arrival order.
[[nodiscard]] std::vector<TowerUserSession> derive_tower_sessions(
    const TowerSpec& tower, Duration run_time, std::uint64_t churn_seed);

}  // namespace sprout

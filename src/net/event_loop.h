// Single-threaded poll(2) event loop for the real-time endpoints.
//
// Translates wall-clock time into the library's TimePoint domain (epoch =
// loop construction) so the core protocol classes — which are pure
// functions of TimePoint — run unchanged over real sockets.  Readable-fd
// callbacks plus one-shot timers; nothing more is needed to host Sprout's
// 20 ms tick and a UDP socket.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "util/units.h"

namespace sprout::net {

class EventLoop {
 public:
  using Callback = std::function<void()>;
  using TimerId = std::uint64_t;

  EventLoop();

  // Current time in the library's TimePoint domain (monotonic, starts at
  // zero when the loop is constructed).
  [[nodiscard]] TimePoint now() const;

  // Invokes `cb` whenever `fd` is readable.  One callback per fd.
  void watch_readable(int fd, Callback cb);
  void unwatch(int fd);

  // One-shot timers; scheduling in the past fires on the next iteration.
  TimerId schedule_at(TimePoint t, Callback cb);
  TimerId schedule_after(Duration d, Callback cb) {
    return schedule_at(now() + d, cb);
  }
  void cancel(TimerId id);

  // Runs until stop() or, with run_for, until the deadline passes.
  void run();
  void run_for(Duration d);
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }

 private:
  struct Timer {
    TimePoint at;
    TimerId id;
    bool operator>(const Timer& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  void run_until(TimePoint deadline, bool bounded);
  void fire_due_timers();
  [[nodiscard]] int poll_timeout_ms(TimePoint deadline, bool bounded) const;

  std::chrono::steady_clock::time_point epoch_;
  std::map<int, Callback> readable_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::map<TimerId, Callback> timer_callbacks_;  // erased on cancel/fire
  TimerId next_timer_id_ = 1;
  bool running_ = false;
  std::uint64_t iterations_ = 0;
};

}  // namespace sprout::net

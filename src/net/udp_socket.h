// RAII IPv4 UDP socket for the real-time Sprout endpoints (net/).
//
// The simulator proves the algorithms; this thin, exception-safe wrapper
// carries the same wire bytes over real sockets so the library is usable
// outside the lab (examples/udp_demo, net_udp_test run over loopback).
// Deliberately minimal: IPv4 + non-blocking datagrams, nothing else.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace sprout::net {

// A resolved IPv4 endpoint (host-order fields; conversion is internal).
struct SocketAddress {
  std::uint32_t ip = 0;  // host byte order
  std::uint16_t port = 0;

  // Parses a dotted-quad such as "127.0.0.1".  Throws std::invalid_argument
  // on garbage (this is a config-time operation, not a data path).
  static SocketAddress v4(const std::string& dotted_quad, std::uint16_t port);

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const SocketAddress&, const SocketAddress&) = default;
};

struct Datagram {
  std::vector<std::uint8_t> data;
  SocketAddress from;
};

// Move-only owner of a UDP socket file descriptor.
class UdpSocket {
 public:
  // Creates a non-blocking IPv4 UDP socket; throws std::system_error.
  UdpSocket();
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  // Binds to the loopback interface; port 0 picks an ephemeral port.
  void bind_loopback(std::uint16_t port = 0);
  // Binds to all interfaces.
  void bind_any(std::uint16_t port);

  [[nodiscard]] std::uint16_t local_port() const;
  [[nodiscard]] int fd() const { return fd_; }

  // Sends one datagram; returns bytes sent.  A full socket buffer
  // (EWOULDBLOCK) returns 0 — Sprout is loss-tolerant, dropping here is the
  // same as dropping in the first queue.  Other errors throw.
  std::size_t send_to(std::span<const std::uint8_t> data,
                      const SocketAddress& to);

  // Non-blocking receive; nullopt when no datagram is waiting.
  std::optional<Datagram> receive(std::size_t max_size = 65536);

 private:
  int fd_ = -1;
};

}  // namespace sprout::net

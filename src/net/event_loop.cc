#include "net/event_loop.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <system_error>

#include "obs/metrics.h"

namespace sprout::net {

EventLoop::EventLoop() : epoch_(std::chrono::steady_clock::now()) {}

TimePoint EventLoop::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return TimePoint{} +
         std::chrono::duration_cast<Duration>(elapsed);
}

void EventLoop::watch_readable(int fd, Callback cb) {
  readable_[fd] = std::move(cb);
}

void EventLoop::unwatch(int fd) { readable_.erase(fd); }

EventLoop::TimerId EventLoop::schedule_at(TimePoint t, Callback cb) {
  const TimerId id = next_timer_id_++;
  timers_.push({t, id});
  timer_callbacks_[id] = std::move(cb);
  return id;
}

void EventLoop::cancel(TimerId id) { timer_callbacks_.erase(id); }

void EventLoop::fire_due_timers() {
  const TimePoint t = now();
  const bool obs_on = obs::enabled();
  while (!timers_.empty() && timers_.top().at <= t) {
    const Timer timer = timers_.top();
    timers_.pop();
    const auto it = timer_callbacks_.find(timer.id);
    if (it == timer_callbacks_.end()) continue;  // cancelled
    if (obs_on) {
      // Tick lag: how late past its deadline a timer actually fired —
      // the loop's scheduling health under real-socket load.
      static obs::Counter& fired =
          obs::Registry::instance().counter("event_loop.timers_fired");
      static obs::LatencyHistogram& lag = obs::Registry::instance().histogram(
          "event_loop.tick_lag", std::chrono::milliseconds(1),
          std::chrono::milliseconds(250));
      fired.add();
      lag.record(t - timer.at);
    }
    Callback cb = std::move(it->second);
    timer_callbacks_.erase(it);
    cb();
  }
}

int EventLoop::poll_timeout_ms(TimePoint deadline, bool bounded) const {
  // Wake for the nearest timer or the run_for deadline, capped so a stray
  // cancellation cannot park the loop forever.
  TimePoint wake = bounded ? deadline : now() + sec(1);
  if (!timers_.empty()) wake = std::min(wake, timers_.top().at);
  const auto until = wake - now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(until);
  return static_cast<int>(std::clamp<std::int64_t>(ms.count(), 0, 1000));
}

void EventLoop::run_until(TimePoint deadline, bool bounded) {
  running_ = true;
  while (running_) {
    if (bounded && now() >= deadline) break;
    fire_due_timers();
    if (!running_) break;

    std::vector<pollfd> fds;
    fds.reserve(readable_.size());
    for (const auto& [fd, cb] : readable_) {
      fds.push_back({fd, POLLIN, 0});
    }
    const int timeout = poll_timeout_ms(deadline, bounded);
    const int rc = ::poll(fds.data(), fds.size(), timeout);
    ++iterations_;
    if (obs::enabled()) {
      static obs::Counter& iters =
          obs::Registry::instance().counter("event_loop.iterations");
      iters.add();
      obs::Registry::instance()
          .gauge("event_loop.timer_queue_depth")
          .set(static_cast<double>(timers_.size()));
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "poll");
    }
    for (const pollfd& p : fds) {
      if ((p.revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      const auto it = readable_.find(p.fd);
      if (it != readable_.end()) it->second();
    }
    fire_due_timers();
  }
  running_ = false;
}

void EventLoop::run() { run_until(TimePoint{}, /*bounded=*/false); }

void EventLoop::run_for(Duration d) {
  run_until(now() + d, /*bounded=*/true);
}

}  // namespace sprout::net

#include "net/udp_endpoint.h"

#include <cassert>
#include <utility>

namespace sprout::net {

SproutUdpEndpoint::SproutUdpEndpoint(EventLoop& loop,
                                     const SproutParams& params,
                                     DataSource* source,
                                     std::uint16_t bind_port)
    : loop_(loop),
      params_(params),
      receiver_(params, make_bayesian_strategy(params)),
      sender_(params,
              [this](SproutWireMessage&& msg, ByteCount wire) {
                emit(std::move(msg), wire);
              }),
      source_(source) {
  socket_.bind_loopback(bind_port);
}

void SproutUdpEndpoint::start() {
  assert(peer_.has_value() && "set_peer before start");
  assert(!started_);
  started_ = true;
  loop_.watch_readable(socket_.fd(), [this] { on_readable(); });
  loop_.schedule_after(params_.tick, [this] { tick(); });
}

void SproutUdpEndpoint::tick() {
  receiver_.tick(loop_.now());
  sender_.tick(loop_.now(), [this](ByteCount max) {
    return source_ != nullptr ? source_->pull(max) : 0;
  });
  loop_.schedule_after(params_.tick, [this] { tick(); });
}

void SproutUdpEndpoint::emit(SproutWireMessage&& msg, ByteCount wire_size) {
  const DeliveryForecast& f = receiver_.latest_forecast();
  if (f.ticks() > 0) {
    ForecastBlock block;
    block.received_or_lost_bytes = receiver_.received_or_lost_bytes();
    block.origin_us = f.origin.time_since_epoch().count();
    block.tick_us = static_cast<std::uint32_t>(f.tick.count());
    block.cumulative_bytes.reserve(f.cumulative_bytes.size());
    for (ByteCount b : f.cumulative_bytes) {
      block.cumulative_bytes.push_back(
          static_cast<std::uint32_t>(std::min<ByteCount>(b, 0xffffffff)));
    }
    msg.forecast = std::move(block);
  }
  std::vector<std::uint8_t> datagram = serialize(msg);
  // Materialize the app payload as padding: the datagram's length on the
  // wire is what the receiver byte-accounts, exactly like Packet::size in
  // the simulator.
  if (static_cast<ByteCount>(datagram.size()) < wire_size) {
    datagram.resize(static_cast<std::size_t>(wire_size), 0);
  }
  if (socket_.send_to(datagram, *peer_) > 0) ++sent_;
}

void SproutUdpEndpoint::on_readable() {
  // Drain everything waiting; the loop edge-triggers us once per poll.
  while (auto dgram = socket_.receive()) {
    if (peer_.has_value() && !(dgram->from == *peer_)) {
      ++foreign_;
      continue;
    }
    const std::optional<SproutWireMessage> msg = parse(dgram->data);
    if (!msg.has_value()) {
      ++malformed_;
      continue;
    }
    ++received_;
    receiver_.on_packet(*msg, static_cast<ByteCount>(dgram->data.size()),
                        loop_.now());
    if (msg->forecast.has_value()) {
      sender_.on_forecast(*msg->forecast, loop_.now());
    }
  }
}

}  // namespace sprout::net

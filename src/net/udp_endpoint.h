// A real-time Sprout endpoint over UDP (the deployment shape of §3).
//
// Reuses the exact protocol classes the simulator validates —
// SproutReceiver, SproutSender, the wire format — and swaps the emulated
// network for a UdpSocket driven by an EventLoop: the 20 ms tick is a loop
// timer, arrivals are socket reads, and the app-payload bytes the sim only
// accounts for are materialized as zero padding after the header (parse()
// ignores trailing bytes, so the datagram length IS the wire size).
//
// Like the simulated endpoint, each SproutUdpEndpoint runs BOTH protocol
// halves (Fig. 3: the model is maintained separately in each direction):
// attach a DataSource to send data; leave it null for a feedback-only
// peer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/params.h"
#include "core/receiver.h"
#include "core/sender.h"
#include "core/source.h"
#include "core/strategy.h"
#include "net/event_loop.h"
#include "net/udp_socket.h"

namespace sprout::net {

class SproutUdpEndpoint {
 public:
  // `source` may be null (pure receiver).  Binds to an ephemeral loopback
  // port by default; call local_port() to learn it.
  SproutUdpEndpoint(EventLoop& loop, const SproutParams& params,
                    DataSource* source, std::uint16_t bind_port = 0);

  SproutUdpEndpoint(const SproutUdpEndpoint&) = delete;
  SproutUdpEndpoint& operator=(const SproutUdpEndpoint&) = delete;

  [[nodiscard]] std::uint16_t local_port() const {
    return socket_.local_port();
  }

  // Fixes the peer; packets from other sources are counted and dropped.
  void set_peer(const SocketAddress& peer) { peer_ = peer; }

  // Starts the 20 ms tick loop and the socket watch.
  void start();

  // Delivered app-payload bytes (for throughput accounting in tests/demos).
  [[nodiscard]] ByteCount payload_bytes_received() const {
    return receiver_.payload_bytes_received();
  }
  [[nodiscard]] const SproutReceiver& receiver() const { return receiver_; }
  [[nodiscard]] const SproutSender& sender() const { return sender_; }
  [[nodiscard]] std::int64_t datagrams_received() const { return received_; }
  [[nodiscard]] std::int64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::int64_t malformed_datagrams() const { return malformed_; }
  [[nodiscard]] std::int64_t foreign_datagrams() const { return foreign_; }

 private:
  void tick();
  void on_readable();
  void emit(SproutWireMessage&& msg, ByteCount wire_size);

  EventLoop& loop_;
  SproutParams params_;
  UdpSocket socket_;
  SproutReceiver receiver_;
  SproutSender sender_;
  DataSource* source_;
  std::optional<SocketAddress> peer_;
  bool started_ = false;
  std::int64_t received_ = 0;
  std::int64_t sent_ = 0;
  std::int64_t malformed_ = 0;
  std::int64_t foreign_ = 0;
};

}  // namespace sprout::net

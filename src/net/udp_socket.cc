#include "net/udp_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace sprout::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in to_sockaddr(const SocketAddress& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  sa.sin_addr.s_addr = htonl(addr.ip);
  return sa;
}

SocketAddress from_sockaddr(const sockaddr_in& sa) {
  SocketAddress addr;
  addr.ip = ntohl(sa.sin_addr.s_addr);
  addr.port = ntohs(sa.sin_port);
  return addr;
}

}  // namespace

SocketAddress SocketAddress::v4(const std::string& dotted_quad,
                                std::uint16_t port) {
  in_addr parsed{};
  if (inet_pton(AF_INET, dotted_quad.c_str(), &parsed) != 1) {
    throw std::invalid_argument("not an IPv4 address: " + dotted_quad);
  }
  SocketAddress addr;
  addr.ip = ntohl(parsed.s_addr);
  addr.port = port;
  return addr;
}

std::string SocketAddress::to_string() const {
  in_addr raw{};
  raw.s_addr = htonl(ip);
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &raw, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(port);
}

UdpSocket::UdpSocket() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) throw_errno("socket");
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void UdpSocket::bind_loopback(std::uint16_t port) {
  sockaddr_in sa = to_sockaddr({INADDR_LOOPBACK, port});
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    throw_errno("bind");
  }
}

void UdpSocket::bind_any(std::uint16_t port) {
  sockaddr_in sa = to_sockaddr({INADDR_ANY, port});
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    throw_errno("bind");
  }
}

std::uint16_t UdpSocket::local_port() const {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(sa.sin_port);
}

std::size_t UdpSocket::send_to(std::span<const std::uint8_t> data,
                               const SocketAddress& to) {
  sockaddr_in sa = to_sockaddr(to);
  const ssize_t n =
      ::sendto(fd_, data.data(), data.size(), 0,
               reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (n < 0) {
    if (errno == EWOULDBLOCK || errno == EAGAIN) return 0;
    throw_errno("sendto");
  }
  return static_cast<std::size_t>(n);
}

std::optional<Datagram> UdpSocket::receive(std::size_t max_size) {
  Datagram dgram;
  dgram.data.resize(max_size);
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  const ssize_t n = ::recvfrom(fd_, dgram.data.data(), dgram.data.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) {
    if (errno == EWOULDBLOCK || errno == EAGAIN) return std::nullopt;
    throw_errno("recvfrom");
  }
  dgram.data.resize(static_cast<std::size_t>(n));
  dgram.from = from_sockaddr(sa);
  return dgram;
}

}  // namespace sprout::net

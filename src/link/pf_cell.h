// Multi-user cell with proportional-fair scheduling — the §2.1 substrate.
//
// "The base station schedules data transmissions taking both per-user
// (proportional) fairness and channel quality into consideration [3].
// Typically, each user's device is scheduled for a fixed time slice over
// which a variable number of payload bits may be sent, depending on the
// channel conditions, and users are scheduled in roughly round-robin
// fashion."  (§2.1, citing the 1xEV-DO scheduler.)
//
// This module builds that system: per-user fading processes (an
// Ornstein-Uhlenbeck walk on SNR in dB — slow fades, like a walking user),
// per-slot spectral efficiency via the Shannon bound, and the classic
// proportional-fair rule (schedule argmax instantaneous/average).  Each
// user's scheduled bytes become a delivery-opportunity Trace, so the whole
// evaluation stack runs unchanged on top of first-principles cellular
// dynamics instead of the calibrated Cox process — an independent check
// that Sprout's results are not an artifact of the trace generator
// matching its inference model (bench/ablation_pfcell).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"
#include "util/units.h"

namespace sprout {

struct PfCellParams {
  int num_users = 4;
  Duration slot = msec(1);         // TTI
  double bandwidth_hz = 5e6;       // shared channel bandwidth
  double mean_snr_db = 5.0;        // long-run average per user
  double snr_stddev_db = 6.0;      // fading depth
  double snr_reversion_per_s = 0.4;  // fade time constant (slow = mobile)
  Duration pf_window = msec(1500); // EWMA horizon of the PF average
  // Efficiency cap: real modulation tops out well below Shannon at high
  // SNR (64-QAM ~ 6 bit/s/Hz).
  double max_spectral_efficiency = 6.0;
};

// One user's state, exposed for tests and instrumentation.
struct PfUserState {
  double snr_db = 0.0;
  double avg_rate_bps = 1.0;  // PF average (R_u)
  ByteCount bytes_served = 0;
  std::int64_t slots_served = 0;
};

class PfCell {
 public:
  PfCell(PfCellParams params, std::uint64_t seed);

  // Advances one slot: fades every user's channel, schedules the PF
  // winner, credits its bytes.  Returns the scheduled user's index.
  int step();

  // Runs for a duration and returns each user's delivery-opportunity
  // trace (one opportunity per accumulated MTU, stamped at the slot where
  // the byte budget crossed the MTU boundary).
  std::vector<Trace> run(Duration duration);

  [[nodiscard]] const PfUserState& user(int u) const {
    return users_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] int num_users() const {
    return static_cast<int>(users_.size());
  }
  [[nodiscard]] TimePoint now() const { return now_; }

  // Instantaneous deliverable rate of user u this slot, in bits/s.
  [[nodiscard]] double instantaneous_rate_bps(int u) const;

 private:
  void fade(PfUserState& user);

  PfCellParams params_;
  Rng rng_;
  std::vector<PfUserState> users_;
  TimePoint now_{};
  std::vector<ByteCount> byte_credit_;  // sub-MTU remainders per user
  std::vector<std::vector<TimePoint>> opportunities_;
};

}  // namespace sprout

#include "link/tower_cell.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "synth/models.h"

namespace sprout {

namespace {

template <typename Process>
class ProcessChannel final : public TowerChannel {
 public:
  template <typename Params>
  ProcessChannel(const Params& params, std::uint64_t seed)
      : process_(params, seed), step_(params.step) {}

  double advance() override { return process_.advance(); }
  [[nodiscard]] Duration step() const override { return step_; }

 private:
  Process process_;
  Duration step_;
};

}  // namespace

std::unique_ptr<TowerChannel> make_tower_channel(const SynthSpec& channel,
                                                 std::uint64_t seed) {
  if (!channel.ops.empty()) {
    throw std::invalid_argument(
        "tower channels take no op chain (live models only)");
  }
  switch (channel.base) {
    case SynthSpec::Base::kBrownian:
      return std::make_unique<ProcessChannel<BrownianRateProcess>>(
          channel.brownian, seed);
    case SynthSpec::Base::kMarkov:
      return std::make_unique<ProcessChannel<MarkovRateProcess>>(
          channel.markov, seed);
    case SynthSpec::Base::kCox:
    case SynthSpec::Base::kPreset:
    case SynthSpec::Base::kTraceFile:
      break;
  }
  throw std::invalid_argument(
      "tower channels must be live models (brownian or markov)");
}

TowerCell::TowerCell(TowerCellParams params) : params_(params) {
  if (params_.slot <= Duration::zero()) {
    throw std::invalid_argument("tower cell slot must be > 0");
  }
  if (params_.pf_window < params_.slot) {
    throw std::invalid_argument("tower cell pf_window must be >= slot");
  }
}

void TowerCell::add_user(std::int64_t user_id,
                         std::unique_ptr<TowerChannel> channel) {
  if (channel == nullptr) {
    throw std::invalid_argument("tower user needs a channel");
  }
  User user;
  user.channel = std::move(channel);
  user.next_advance = now_;  // first step() call draws the initial rate
  const auto [it, inserted] = users_.emplace(user_id, std::move(user));
  if (!inserted) {
    throw std::invalid_argument("duplicate tower user id: " +
                                std::to_string(user_id));
  }
}

std::vector<TimePoint> TowerCell::remove_user(std::int64_t user_id) {
  const auto it = users_.find(user_id);
  if (it == users_.end()) {
    throw std::invalid_argument("unknown tower user id: " +
                                std::to_string(user_id));
  }
  std::vector<TimePoint> opportunities = std::move(it->second.opportunities);
  users_.erase(it);
  return opportunities;
}

double TowerCell::avg_rate_pps(std::int64_t user_id) const {
  const auto it = users_.find(user_id);
  if (it == users_.end()) {
    throw std::invalid_argument("unknown tower user id: " +
                                std::to_string(user_id));
  }
  return it->second.avg_pps;
}

std::int64_t TowerCell::step() {
  if (users_.empty()) {
    now_ += params_.slot;
    return -1;
  }

  // Lazily advance each user's channel to cover this slot.  A user's rate
  // holds for one model step (typically 10x the slot), so most slots touch
  // no channel at all.
  for (auto& [id, user] : users_) {
    while (user.next_advance <= now_) {
      user.rate_pps = user.channel->advance();
      user.next_advance += user.channel->step();
    }
  }

  // Proportional-fair rule: serve argmax r_u / R_u; ties break toward the
  // smallest id (strict >, id-ordered iteration).
  std::int64_t winner = users_.begin()->first;
  double best = -1.0;
  for (const auto& [id, user] : users_) {
    const double metric = user.rate_pps / std::max(user.avg_pps, 1e-3);
    if (metric > best) {
      best = metric;
      winner = id;
    }
  }

  const double dt = to_seconds(params_.slot);
  User& served = users_.find(winner)->second;
  const ByteCount slot_bytes = static_cast<ByteCount>(
      served.rate_pps * static_cast<double>(kMtuBytes) * dt);

  // EWMA with the PF window's time constant; unserved users decay toward
  // zero so a freshly faded user regains priority within pf_window.
  const double beta = dt / to_seconds(params_.pf_window);
  for (auto& [id, user] : users_) {
    const double served_pps =
        id == winner ? static_cast<double>(slot_bytes) /
                           (static_cast<double>(kMtuBytes) * dt)
                     : 0.0;
    user.avg_pps = (1.0 - beta) * user.avg_pps + beta * served_pps;
    user.avg_pps = std::max(user.avg_pps, 1e-3);
  }

  // One delivery opportunity per completed MTU, stamped at this slot.
  served.byte_credit += slot_bytes;
  while (served.byte_credit >= kMtuBytes) {
    served.byte_credit -= kMtuBytes;
    served.opportunities.push_back(now_);
  }

  ++slots_served_;
  now_ += params_.slot;
  return winner;
}

}  // namespace sprout

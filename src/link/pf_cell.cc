#include "link/pf_cell.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sprout {

PfCell::PfCell(PfCellParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  assert(params_.num_users >= 1);
  assert(params_.slot > Duration::zero());
  users_.resize(static_cast<std::size_t>(params_.num_users));
  byte_credit_.assign(users_.size(), 0);
  opportunities_.resize(users_.size());
  // Start each user at an independent draw from the fading stationary
  // distribution so the cell does not begin phase-locked.
  for (PfUserState& u : users_) {
    u.snr_db = rng_.normal(params_.mean_snr_db, params_.snr_stddev_db);
    u.avg_rate_bps = 1.0;
  }
}

void PfCell::fade(PfUserState& user) {
  // Ornstein-Uhlenbeck on SNR(dB): mean-reverting with stationary stddev
  // snr_stddev_db.  dS = -a (S - mean) dt + sigma dW with sigma chosen so
  // the stationary variance matches.
  const double dt = to_seconds(params_.slot);
  const double a = params_.snr_reversion_per_s;
  const double stationary_sd = params_.snr_stddev_db;
  const double step_sd = stationary_sd * std::sqrt(2.0 * a * dt);
  user.snr_db += -a * (user.snr_db - params_.mean_snr_db) * dt +
                 rng_.normal(0.0, step_sd);
}

double PfCell::instantaneous_rate_bps(int u) const {
  const PfUserState& user = users_[static_cast<std::size_t>(u)];
  const double snr_linear = std::pow(10.0, user.snr_db / 10.0);
  const double efficiency = std::min(std::log2(1.0 + snr_linear),
                                     params_.max_spectral_efficiency);
  return params_.bandwidth_hz * efficiency;
}

int PfCell::step() {
  for (PfUserState& u : users_) fade(u);

  // Proportional-fair rule: serve argmax r_u / R_u.
  int winner = 0;
  double best = -1.0;
  for (int u = 0; u < num_users(); ++u) {
    const double metric =
        instantaneous_rate_bps(u) /
        std::max(users_[static_cast<std::size_t>(u)].avg_rate_bps, 1.0);
    if (metric > best) {
      best = metric;
      winner = u;
    }
  }

  const double dt = to_seconds(params_.slot);
  const ByteCount slot_bytes = static_cast<ByteCount>(
      instantaneous_rate_bps(winner) * dt / 8.0);

  // EWMA with the PF window's time constant: R <- (1-b) R + b r served,
  // where unserved users decay toward zero service.
  const double beta = dt / to_seconds(params_.pf_window);
  for (int u = 0; u < num_users(); ++u) {
    PfUserState& user = users_[static_cast<std::size_t>(u)];
    const double served_bps =
        u == winner ? static_cast<double>(slot_bytes) * 8.0 / dt : 0.0;
    user.avg_rate_bps = (1.0 - beta) * user.avg_rate_bps + beta * served_bps;
    user.avg_rate_bps = std::max(user.avg_rate_bps, 1.0);
  }

  PfUserState& w = users_[static_cast<std::size_t>(winner)];
  w.bytes_served += slot_bytes;
  ++w.slots_served;

  // Emit one delivery opportunity per completed MTU.
  byte_credit_[static_cast<std::size_t>(winner)] += slot_bytes;
  while (byte_credit_[static_cast<std::size_t>(winner)] >= kMtuBytes) {
    byte_credit_[static_cast<std::size_t>(winner)] -= kMtuBytes;
    opportunities_[static_cast<std::size_t>(winner)].push_back(now_);
  }

  now_ += params_.slot;
  return winner;
}

std::vector<Trace> PfCell::run(Duration duration) {
  const TimePoint end = now_ + duration;
  while (now_ < end) step();
  std::vector<Trace> traces;
  traces.reserve(users_.size());
  for (std::vector<TimePoint>& opp : opportunities_) {
    traces.emplace_back(std::move(opp), now_.time_since_epoch());
    opp.clear();
  }
  return traces;
}

}  // namespace sprout

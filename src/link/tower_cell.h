// A cell tower serving a churning population of users — the §2.1 scheduler
// generalized to synth-driven per-user channels and live attach/detach.
//
// PfCell (link/pf_cell.h) models the proportional-fair downlink for a
// fixed fleet of OU-faded users.  TowerCell keeps the scheduler — serve
// argmax(instantaneous rate / PF-average rate) each slot, credit the
// winner's bytes, emit one delivery opportunity per completed MTU — but
// draws each user's instantaneous rate from its own synth/ rate process
// (Brownian or Markov, the live models) and lets users arrive and depart
// mid-run.  Departed users cost nothing: their state is erased, and the
// scheduler's per-slot work is O(active users).
//
// Determinism: users are stored in id order and every tie in the PF metric
// breaks toward the smallest id, so a tower run is a pure function of its
// channel seeds and churn timeline, bit-identical on any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "synth/synth.h"
#include "trace/trace.h"
#include "util/units.h"

namespace sprout {

// One user's radio channel: a stepwise rate process the cell advances
// lazily (a user's rate holds for one model step, typically 20 ms, across
// many scheduler slots).
class TowerChannel {
 public:
  virtual ~TowerChannel() = default;

  // Advances one model step and returns the rate holding in it, in
  // MTU-sized packets per second.
  virtual double advance() = 0;

  // The model step the returned rate holds for.
  [[nodiscard]] virtual Duration step() const = 0;
};

// Builds a live channel from a synth spec with `seed` substituted for the
// spec's own.  Throws std::invalid_argument unless the spec is a pure live
// model (brownian or markov, no op chain) — the tower never materializes a
// trace to apply ops to.
[[nodiscard]] std::unique_ptr<TowerChannel> make_tower_channel(
    const SynthSpec& channel, std::uint64_t seed);

struct TowerCellParams {
  Duration slot = msec(2);          // scheduler TTI: one user served per slot
  Duration pf_window = msec(1500);  // EWMA horizon of the PF average
};

class TowerCell {
 public:
  explicit TowerCell(TowerCellParams params);

  // Attaches a user; the channel's first step begins at the current slot.
  // Throws std::invalid_argument on a duplicate id.
  void add_user(std::int64_t user_id, std::unique_ptr<TowerChannel> channel);

  // Detaches a user, returning the delivery opportunities it accumulated.
  // Throws std::invalid_argument for an unknown id.
  std::vector<TimePoint> remove_user(std::int64_t user_id);

  // Advances one slot: lazily advances channels whose model step elapsed,
  // serves the PF winner, updates every active user's PF average.  Returns
  // the served user's id, or -1 when no user is attached.
  std::int64_t step();

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] int active_users() const {
    return static_cast<int>(users_.size());
  }
  [[nodiscard]] std::int64_t slots_served() const { return slots_served_; }

  // Current PF-average rate of an attached user (tests).
  [[nodiscard]] double avg_rate_pps(std::int64_t user_id) const;

 private:
  struct User {
    std::unique_ptr<TowerChannel> channel;
    TimePoint next_advance{};  // when the held rate expires
    double rate_pps = 0.0;
    double avg_pps = 1.0;  // PF average, floored away from zero
    ByteCount byte_credit = 0;
    std::vector<TimePoint> opportunities;
  };

  TowerCellParams params_;
  // id-ordered so iteration (and PF tie-breaking) is deterministic.
  std::map<std::int64_t, User> users_;
  TimePoint now_{};
  std::int64_t slots_served_ = 0;
};

}  // namespace sprout

// Cellsim: the paper's trace-driven cellular link emulator (§4.2).
//
// One CellsimLink emulates one direction.  An arriving packet is delayed by
// the propagation delay, optionally dropped (Bernoulli tail drop, §5.6),
// passed through the queue-management policy, and appended to the queue.
// Delivery opportunities occur exactly at the trace's recorded instants;
// each opportunity can carry `opportunity_bytes` (one MTU) and is wasted if
// the queue is empty.  Accounting is per byte: one 1500-byte opportunity
// releases fifteen queued 100-byte packets (paper footnote 6).  When a run
// outlasts the trace, the trace repeats.
#pragma once

#include <cstdint>
#include <memory>

#include "aqm/aqm.h"
#include "aqm/queue.h"
#include "metrics/recorder.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "util/units.h"

namespace sprout {

struct CellsimConfig {
  Duration propagation_delay = msec(20);  // each way; 40 ms min RTT total
  double loss_rate = 0.0;                 // Bernoulli drop on arrival
  ByteCount opportunity_bytes = kMtuBytes;
  std::uint64_t seed = 1;                 // for the loss process only
};

class CellsimLink : public PacketSink {
 public:
  // `policy` may be null for the default unbounded DropTail behaviour.
  CellsimLink(Simulator& sim, Trace trace, CellsimConfig config,
              PacketSink& out, std::unique_ptr<AqmPolicy> policy = nullptr);

  // Ingress from the sending endpoint.
  void receive(Packet&& p) override;

  // Counters for tests and metrics.
  [[nodiscard]] ByteCount delivered_bytes() const { return delivered_bytes_; }
  [[nodiscard]] std::int64_t delivered_packets() const { return delivered_packets_; }
  [[nodiscard]] std::int64_t random_drops() const { return random_drops_; }
  [[nodiscard]] std::int64_t queue_drops() const { return queue_.dropped(); }
  [[nodiscard]] std::int64_t wasted_opportunities() const { return wasted_opportunities_; }
  [[nodiscard]] ByteCount queue_bytes() const { return queue_.bytes(); }
  [[nodiscard]] std::size_t queue_packets() const { return queue_.packets(); }
  [[nodiscard]] const Trace& trace() const { return trace_; }

  // Flight-recorder tap (metrics/recorder.h): queue-depth samples after
  // every enqueue and every delivery opportunity, plus drop events.  Null
  // (the default) records nothing; each tap site costs one branch, so an
  // untapped link is byte-identical to a pre-recorder one.  The recorder
  // must outlive the link.
  void set_timeline_recorder(FlowTimelineRecorder* recorder) {
    timeline_ = recorder;
  }

 private:
  void arrive_at_queue(Packet&& p);
  void schedule_next_opportunity();
  void run_opportunity();

  Simulator& sim_;
  Trace trace_;
  CellsimConfig config_;
  PacketSink& out_;
  std::unique_ptr<AqmPolicy> policy_;
  Rng loss_rng_;
  LinkQueue queue_;
  std::size_t next_opportunity_ = 0;
  FlowTimelineRecorder* timeline_ = nullptr;

  ByteCount delivered_bytes_ = 0;
  std::int64_t delivered_packets_ = 0;
  std::int64_t random_drops_ = 0;
  std::int64_t wasted_opportunities_ = 0;
};

}  // namespace sprout

#include "link/cellsim.h"

#include <cassert>
#include <utility>

namespace sprout {

CellsimLink::CellsimLink(Simulator& sim, Trace trace, CellsimConfig config,
                         PacketSink& out, std::unique_ptr<AqmPolicy> policy)
    : sim_(sim),
      trace_(std::move(trace)),
      config_(config),
      out_(out),
      policy_(policy ? std::move(policy) : std::make_unique<AqmPolicy>()),
      loss_rng_(config.seed) {
  assert(!trace_.empty() && "cellsim needs a non-empty trace");
  schedule_next_opportunity();
}

void CellsimLink::receive(Packet&& p) {
  assert(p.size > 0 && p.size <= config_.opportunity_bytes &&
         "cellsim carries at most one MTU per packet");
  sim_.after(config_.propagation_delay,
             [this, p = std::move(p)]() mutable { arrive_at_queue(std::move(p)); });
}

void CellsimLink::arrive_at_queue(Packet&& p) {
  if (config_.loss_rate > 0.0 && loss_rng_.bernoulli(config_.loss_rate)) {
    ++random_drops_;
    if (timeline_ != nullptr) timeline_->record_drop(sim_.now());
    return;
  }
  if (!policy_->admit(queue_, p, sim_.now())) {
    queue_.count_rejected_arrival();
    if (timeline_ != nullptr) timeline_->record_drop(sim_.now());
    return;
  }
  p.enqueued_at = sim_.now();
  queue_.push(std::move(p));
  if (timeline_ != nullptr) {
    timeline_->record_queue_sample(sim_.now(), queue_.packets(),
                                   queue_.bytes());
  }
}

void CellsimLink::schedule_next_opportunity() {
  const TimePoint when = trace_.opportunity(next_opportunity_);
  sim_.at(when, [this] {
    run_opportunity();
    ++next_opportunity_;
    schedule_next_opportunity();
  });
}

void CellsimLink::run_opportunity() {
  ByteCount budget = config_.opportunity_bytes;
  bool delivered_any = false;
  while (budget > 0) {
    const Packet* head = queue_.head();
    if (head == nullptr || head->size > budget) break;
    std::optional<Packet> p = policy_->dequeue(queue_, sim_.now());
    if (!p.has_value()) break;  // policy dropped the rest of the backlog
    // A dequeue-side policy (CoDel) may have dropped the head we sized the
    // budget against and returned a larger packet; it rides the next
    // opportunity instead.
    if (p->size > budget) {
      queue_.push_front(std::move(*p));
      break;
    }
    budget -= p->size;
    delivered_bytes_ += p->size;
    ++delivered_packets_;
    delivered_any = true;
    out_.receive(std::move(*p));
  }
  if (!delivered_any) ++wasted_opportunities_;
  if (timeline_ != nullptr) {
    // Post-drain sample: together with the enqueue-side sample this
    // brackets the bin's true peak (depth only changes at these two
    // events, plus dequeue-side AQM drops which this sample also covers).
    timeline_->record_queue_sample(sim_.now(), queue_.packets(),
                                   queue_.bytes());
  }
}

}  // namespace sprout

#include "cc/reno.h"

#include <algorithm>

namespace sprout {

void RenoCC::on_ack(const AckEvent& ev) {
  for (std::int64_t i = 0; i < ev.newly_acked; ++i) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start: exponential growth
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance: +1 MSS per RTT
    }
  }
}

void RenoCC::on_packet_loss(TimePoint) {
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = ssthresh_;
}

void RenoCC::on_timeout(TimePoint) {
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
}

}  // namespace sprout

// Simulation endpoints for Google Congestion Control (cc/gcc.h).
//
// GccSender paces encoder frames (every 33 ms, split into MTU packets) at
// min(A_s, A_r) like a WebRTC video sender; GccReceiver runs the arrival
// filter -> over-use detector -> AIMD pipeline per received group and sends
// REMB-style feedback (A_r plus the interval's loss fraction) every 500 ms,
// or immediately after a decrease.
//
// Feedback wire convention (scratch header fields, like the video apps):
//   meta = A_r in bit/s;  ack = loss fraction in ppm.
#pragma once

#include <cstdint>

#include "cc/gcc.h"
#include "sim/packet.h"
#include "sim/simulator.h"

namespace sprout {

struct GccProfile {
  double min_rate_kbps = 50.0;
  double max_rate_kbps = 20000.0;
  double start_rate_kbps = 300.0;
  Duration frame_interval = msec(33);
  Duration feedback_interval = msec(500);
  ByteCount max_packet_bytes = kMtuBytes;
  ByteCount feedback_bytes = 80;
};

class GccSender : public PacketSink {
 public:
  GccSender(Simulator& sim, GccProfile profile, std::int64_t flow_id);

  void attach_network(PacketSink& out) { network_ = &out; }
  void start();

  // REMB feedback from the receiver arrives here.
  void receive(Packet&& feedback) override;

  [[nodiscard]] double target_rate_kbps() const;
  [[nodiscard]] double loss_estimate_kbps() const { return loss_.rate_kbps(); }
  [[nodiscard]] double remb_kbps() const { return remb_kbps_; }
  [[nodiscard]] std::int64_t packets_sent() const { return packets_sent_; }

 private:
  void send_frame();

  Simulator& sim_;
  GccProfile profile_;
  std::int64_t flow_id_;
  PacketSink* network_ = nullptr;
  LossBasedController loss_;
  double remb_kbps_;
  std::int64_t next_seq_ = 0;
  std::int64_t packets_sent_ = 0;
};

class GccReceiver : public PacketSink {
 public:
  GccReceiver(Simulator& sim, GccProfile profile, std::int64_t flow_id);

  void attach_feedback_path(PacketSink& out) { feedback_path_ = &out; }
  void start();

  void receive(Packet&& p) override;

  [[nodiscard]] double remote_rate_kbps() const { return aimd_.rate_kbps(); }
  [[nodiscard]] BandwidthUsage usage() const { return detector_.state(); }
  [[nodiscard]] const ArrivalFilter& filter() const { return filter_; }
  [[nodiscard]] std::int64_t packets_received() const { return received_; }

 private:
  void feedback_timer();
  void send_feedback();

  Simulator& sim_;
  GccProfile profile_;
  std::int64_t flow_id_;
  PacketSink* feedback_path_ = nullptr;

  InterArrivalGrouper grouper_;
  ArrivalFilter filter_;
  OveruseDetector detector_;
  RateEstimator incoming_rate_;
  AimdRateController aimd_;

  std::int64_t received_ = 0;
  std::int64_t window_received_ = 0;
  std::int64_t window_first_seq_ = -1;
  std::int64_t window_max_seq_ = -1;
};

}  // namespace sprout

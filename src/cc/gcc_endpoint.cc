#include "cc/gcc_endpoint.h"

#include <algorithm>
#include <cassert>

namespace sprout {

GccSender::GccSender(Simulator& sim, GccProfile profile, std::int64_t flow_id)
    : sim_(sim),
      profile_(profile),
      flow_id_(flow_id),
      loss_({profile.start_rate_kbps, profile.min_rate_kbps,
             profile.max_rate_kbps}),
      remb_kbps_(profile.start_rate_kbps) {}

void GccSender::start() {
  assert(network_ != nullptr && "attach_network before start");
  sim_.after(profile_.frame_interval, [this] { send_frame(); });
}

double GccSender::target_rate_kbps() const {
  return std::clamp(std::min(loss_.rate_kbps(), remb_kbps_),
                    profile_.min_rate_kbps, profile_.max_rate_kbps);
}

void GccSender::send_frame() {
  ByteCount frame_bytes =
      bytes_at_kbps(target_rate_kbps(), profile_.frame_interval);
  while (frame_bytes > 0) {
    const ByteCount chunk = std::min(frame_bytes, profile_.max_packet_bytes);
    Packet p;
    p.flow_id = flow_id_;
    p.size = chunk;
    p.seq = next_seq_++;
    p.sent_at = sim_.now();
    network_->receive(std::move(p));
    ++packets_sent_;
    frame_bytes -= chunk;
  }
  sim_.after(profile_.frame_interval, [this] { send_frame(); });
}

void GccSender::receive(Packet&& feedback) {
  remb_kbps_ = static_cast<double>(feedback.meta) / 1000.0;
  const double loss_fraction = static_cast<double>(feedback.ack) / 1e6;
  loss_.on_report(loss_fraction);
}

GccReceiver::GccReceiver(Simulator& sim, GccProfile profile,
                         std::int64_t flow_id)
    : sim_(sim),
      profile_(profile),
      flow_id_(flow_id),
      aimd_({.beta = 0.85,
             .start_rate_kbps = profile.start_rate_kbps,
             .min_rate_kbps = profile.min_rate_kbps,
             .max_rate_kbps = profile.max_rate_kbps,
             .convergence_sigmas = 3.0,
             .response_time = msec(200),
             .additive_packet_bytes =
                 static_cast<double>(profile.max_packet_bytes)}) {}

void GccReceiver::start() {
  assert(feedback_path_ != nullptr && "attach_feedback_path before start");
  sim_.after(profile_.feedback_interval, [this] { feedback_timer(); });
}

void GccReceiver::feedback_timer() {
  send_feedback();
  sim_.after(profile_.feedback_interval, [this] { feedback_timer(); });
}

void GccReceiver::receive(Packet&& p) {
  ++received_;
  ++window_received_;
  if (window_first_seq_ < 0) window_first_seq_ = p.seq;
  window_max_seq_ = std::max(window_max_seq_, p.seq);

  incoming_rate_.on_packet(sim_.now(), p.size);
  const auto delta = grouper_.on_packet(p.sent_at, sim_.now(), p.size);
  if (delta.has_value()) {
    const double offset = filter_.update(*delta);
    const BandwidthUsage usage = detector_.detect(offset, sim_.now());
    aimd_.update(usage, incoming_rate_.rate_kbps(sim_.now()), sim_.now());
    if (aimd_.decreased_last_update()) {
      send_feedback();  // REMB goes out immediately on a decrease
    }
  }
}

void GccReceiver::send_feedback() {
  double loss = 0.0;
  if (window_received_ > 0 && window_max_seq_ >= window_first_seq_) {
    const std::int64_t expected = window_max_seq_ - window_first_seq_ + 1;
    loss = 1.0 - static_cast<double>(window_received_) /
                     static_cast<double>(expected);
    loss = std::max(0.0, loss);
  }
  Packet fb;
  fb.flow_id = flow_id_;
  fb.size = profile_.feedback_bytes;
  fb.sent_at = sim_.now();
  fb.meta = static_cast<std::int64_t>(aimd_.rate_kbps() * 1000.0);
  fb.ack = static_cast<std::int64_t>(loss * 1e6);
  feedback_path_->receive(std::move(fb));

  window_received_ = 0;
  window_first_seq_ = -1;
  window_max_seq_ = -1;
}

}  // namespace sprout

// NewReno-style AIMD (Jacobson 1988; the paper's "early TCP variants").
// Also the loss-window component reused by Compound TCP.
#pragma once

#include <algorithm>

#include "cc/congestion_control.h"

namespace sprout {

class RenoCC : public CongestionControl {
 public:
  void on_ack(const AckEvent& ev) override;
  void on_packet_loss(TimePoint now) override;
  void on_timeout(TimePoint now) override;

  [[nodiscard]] double cwnd_packets() const override { return cwnd_; }
  [[nodiscard]] const char* name() const override { return "NewReno"; }
  [[nodiscard]] double ssthresh() const { return ssthresh_; }
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

  // Leaves slow start without a loss event (used by Compound, whose delay
  // signal detects queue build-up that a lossless deep-buffer path never
  // converts into drops).
  void exit_slow_start() { ssthresh_ = std::min(ssthresh_, cwnd_); }

 private:
  double cwnd_ = 2.0;
  double ssthresh_ = 1e9;
};

}  // namespace sprout

#include "cc/gcc.h"

#include <algorithm>
#include <cmath>

namespace sprout {

// ---------------------------------------------------------------- grouping

std::optional<ArrivalDelta> InterArrivalGrouper::on_packet(TimePoint sent_at,
                                                           TimePoint arrived_at,
                                                           ByteCount size) {
  if (!current_.valid) {
    current_ = {sent_at, sent_at, arrived_at, static_cast<double>(size), true};
    return std::nullopt;
  }
  if (sent_at - current_.first_send <= burst_window_) {
    // Same burst: extend the group.  Arrival time of a group is the arrival
    // of its last packet, send time the send of its last packet.
    current_.last_send = std::max(current_.last_send, sent_at);
    current_.last_arrival = std::max(current_.last_arrival, arrived_at);
    current_.size_bytes += static_cast<double>(size);
    return std::nullopt;
  }

  std::optional<ArrivalDelta> delta;
  if (previous_.valid) {
    ArrivalDelta d;
    d.arrival_delta_ms = to_millis(current_.last_arrival - previous_.last_arrival);
    d.send_delta_ms = to_millis(current_.last_send - previous_.last_send);
    d.size_delta_bytes = current_.size_bytes - previous_.size_bytes;
    // Reordered groups carry no usable timing signal.
    if (d.send_delta_ms > 0.0) delta = d;
  }
  previous_ = current_;
  current_ = {sent_at, sent_at, arrived_at, static_cast<double>(size), true};
  return delta;
}

void InterArrivalGrouper::reset() {
  current_ = {};
  previous_ = {};
}

// ------------------------------------------------------------------ filter

ArrivalFilter::ArrivalFilter(ArrivalFilterParams params)
    : params_(params),
      p00_(params.p0_capacity),
      p01_(0.0),
      p11_(params.p0_gradient) {}

double ArrivalFilter::update(const ArrivalDelta& delta) {
  // Measurement: d = h' x + v with h = [dL, 1], x = [1/C, m].
  const double h0 = delta.size_delta_bytes;
  const double d = delta.arrival_delta_ms - delta.send_delta_ms;

  // Predict: x constant, P += Q.
  p00_ += params_.q_capacity;
  p11_ += params_.q_gradient;

  const double predicted = h0 * inv_c_ + m_;
  double residual = d - predicted;

  // Innovation variance s = h P h' + R.
  const double ph0 = p00_ * h0 + p01_;
  const double ph1 = p01_ * h0 + p11_;
  const double s = h0 * ph0 + ph1 + var_noise_;

  // Update the noise estimate from the residual, then clamp outliers so a
  // single multi-second gap (an outage) does not blow up the state.
  const double sigma = std::sqrt(std::max(s, 1e-9));
  var_noise_ = (1.0 - params_.noise_gain) * var_noise_ +
               params_.noise_gain * residual * residual;
  var_noise_ = std::clamp(var_noise_, 1e-3, 1e5);
  const double limit = params_.outlier_sigmas * sigma;
  residual = std::clamp(residual, -limit, limit);

  // Gain K = P h' / s; state and covariance update.
  const double k0 = ph0 / s;
  const double k1 = ph1 / s;
  inv_c_ += k0 * residual;
  m_ += k1 * residual;

  const double new_p00 = p00_ - k0 * (h0 * p00_ + p01_);
  const double new_p01 = p01_ - k0 * (h0 * p01_ + p11_);
  const double new_p11 = p11_ - k1 * (h0 * p01_ + p11_);
  p00_ = std::max(new_p00, 1e-12);
  p01_ = new_p01;
  p11_ = std::max(new_p11, 1e-12);

  // A negative 1/C is unphysical (it would mean bigger packets arrive
  // sooner); keep the capacity component non-negative.
  inv_c_ = std::max(inv_c_, 0.0);

  ++updates_;
  return m_;
}

double ArrivalFilter::capacity_estimate_kbps() const {
  if (inv_c_ <= 1e-9) return 0.0;
  // inv_c_ is ms per byte: C = 1/inv_c_ bytes/ms = 8/inv_c_ bits/ms.
  return 8.0 / inv_c_;  // kbit/s
}

// ---------------------------------------------------------------- detector

const char* to_string(BandwidthUsage u) {
  switch (u) {
    case BandwidthUsage::kNormal: return "normal";
    case BandwidthUsage::kOverusing: return "overusing";
    case BandwidthUsage::kUnderusing: return "underusing";
  }
  return "unknown";
}

OveruseDetector::OveruseDetector(OveruseDetectorParams params)
    : params_(params), threshold_(params.initial_threshold_ms) {}

BandwidthUsage OveruseDetector::detect(double offset_ms, TimePoint now) {
  if (offset_ms > threshold_) {
    if (!in_overuse_region_) {
      in_overuse_region_ = true;
      overuse_start_ = now;
    }
    // Overuse requires persistence and a non-falling gradient: a single
    // spiky measurement is not a standing queue.
    if (now - overuse_start_ >= params_.overuse_time_threshold &&
        offset_ms >= prev_offset_) {
      state_ = BandwidthUsage::kOverusing;
    }
  } else {
    in_overuse_region_ = false;
    state_ = offset_ms < -threshold_ ? BandwidthUsage::kUnderusing
                                     : BandwidthUsage::kNormal;
  }
  adapt_threshold(offset_ms, now);
  prev_offset_ = offset_ms;
  return state_;
}

void OveruseDetector::adapt_threshold(double offset_ms, TimePoint now) {
  if (!has_last_update_) {
    has_last_update_ = true;
    last_update_ = now;
    return;
  }
  const double dt_ms = std::min(to_millis(now - last_update_), 100.0);
  last_update_ = now;
  const double k = std::fabs(offset_ms) > threshold_ ? params_.gain_up
                                                     : params_.gain_down;
  threshold_ += dt_ms * k * (std::fabs(offset_ms) - threshold_);
  threshold_ = std::clamp(threshold_, params_.min_threshold_ms,
                          params_.max_threshold_ms);
}

// ----------------------------------------------------------- rate measure

void RateEstimator::on_packet(TimePoint arrival, ByteCount size) {
  samples_.emplace_back(arrival, size);
  window_bytes_ += size;
  evict(arrival);
}

void RateEstimator::evict(TimePoint now) const {
  while (!samples_.empty() && samples_.front().first < now - window_) {
    window_bytes_ -= samples_.front().second;
    samples_.pop_front();
  }
}

std::optional<double> RateEstimator::rate_kbps(TimePoint now) const {
  evict(now);
  if (samples_.size() < 2) return std::nullopt;
  const Duration span = now - samples_.front().first;
  if (span <= Duration::zero()) return std::nullopt;
  return kbps(window_bytes_, span);
}

// -------------------------------------------------------------------- AIMD

AimdRateController::AimdRateController(AimdParams params)
    : params_(params), rate_kbps_(params.start_rate_kbps) {}

void AimdRateController::transition(BandwidthUsage signal) {
  // Signal-driven state machine from the draft:
  //   OVERUSE forces DECREASE from any state.
  //   UNDERUSE forces HOLD (the queues are draining; wait).
  //   NORMAL lets the controller move HOLD -> INCREASE; DECREASE -> HOLD.
  switch (signal) {
    case BandwidthUsage::kOverusing:
      state_ = State::kDecrease;
      break;
    case BandwidthUsage::kUnderusing:
      state_ = State::kHold;
      break;
    case BandwidthUsage::kNormal:
      if (state_ == State::kHold) {
        state_ = State::kIncrease;
      } else if (state_ == State::kDecrease) {
        state_ = State::kHold;
      }
      break;
  }
}

double AimdRateController::update(BandwidthUsage signal,
                                  std::optional<double> incoming_kbps,
                                  TimePoint now) {
  transition(signal);
  decreased_ = false;

  double dt_s = 0.0;
  if (has_last_update_) {
    dt_s = std::clamp(to_seconds(now - last_update_), 0.0, 1.0);
  }
  has_last_update_ = true;
  last_update_ = now;

  switch (state_) {
    case State::kHold:
      break;
    case State::kIncrease: {
      // Near the estimated capacity knee, grow additively (about one packet
      // per response time); far from it, multiplicatively at <= 8 %/s.
      const bool near_knee =
          avg_max_kbps_ > 0.0 && incoming_kbps.has_value() &&
          std::fabs(*incoming_kbps - avg_max_kbps_) <=
              params_.convergence_sigmas *
                  std::sqrt(var_max_ * avg_max_kbps_ * avg_max_kbps_);
      if (near_knee) {
        const double packets_per_response =
            params_.additive_packet_bytes * 8.0 / 1000.0 /
            std::max(to_seconds(params_.response_time), 1e-3);
        rate_kbps_ += packets_per_response * dt_s;
      } else {
        rate_kbps_ *= std::pow(1.08, dt_s);
      }
      break;
    }
    case State::kDecrease: {
      if (incoming_kbps.has_value()) {
        rate_kbps_ = params_.beta * *incoming_kbps;
        // Track the running mean/relative-variance of R_hat at decreases:
        // this is the controller's memory of where the link saturates.
        if (avg_max_kbps_ < 0.0) {
          avg_max_kbps_ = *incoming_kbps;
        } else {
          const double alpha = 0.05;
          const double norm = std::max(avg_max_kbps_, 1.0);
          const double err = (*incoming_kbps - avg_max_kbps_) / norm;
          avg_max_kbps_ += alpha * (*incoming_kbps - avg_max_kbps_);
          var_max_ = (1 - alpha) * var_max_ + alpha * err * err;
          var_max_ = std::clamp(var_max_, 0.01, 2.5);
        }
      } else {
        rate_kbps_ *= params_.beta;
      }
      decreased_ = true;
      state_ = State::kHold;
      break;
    }
  }

  // A_r may not exceed 1.5x the measured incoming rate: the cap that keeps
  // the estimate from running away when the link is not saturated.
  if (incoming_kbps.has_value()) {
    rate_kbps_ = std::min(rate_kbps_, 1.5 * *incoming_kbps);
  }
  rate_kbps_ = std::clamp(rate_kbps_, params_.min_rate_kbps,
                          params_.max_rate_kbps);
  return rate_kbps_;
}

// -------------------------------------------------------------------- loss

LossBasedController::LossBasedController(LossControllerParams params)
    : params_(params), rate_kbps_(params.start_rate_kbps) {}

double LossBasedController::on_report(double loss_fraction) {
  const double p = std::clamp(loss_fraction, 0.0, 1.0);
  if (p > params_.high_loss) {
    rate_kbps_ *= (1.0 - 0.5 * p);
  } else if (p < params_.low_loss) {
    rate_kbps_ = rate_kbps_ * 1.05 + 1.0;  // +1 kbps floor step
  }
  rate_kbps_ = std::clamp(rate_kbps_, params_.min_rate_kbps,
                          params_.max_rate_kbps);
  return rate_kbps_;
}

}  // namespace sprout

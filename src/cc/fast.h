// FAST TCP (Jin, Wei & Low, INFOCOM 2004) — the paper's §6 cites FAST as a
// delay-based end-to-end algorithm; this is the periodic window law
//   w <- min(2w, (1 - gamma) w + gamma (baseRTT/RTT * w + alpha))
// applied once per update interval.  alpha is the target number of packets
// buffered in the path (FAST's sole tuning knob); gamma the smoothing gain.
#pragma once

#include "cc/congestion_control.h"

namespace sprout {

struct FastParams {
  double alpha = 20.0;          // target queued packets along the path
  double gamma = 0.5;           // update smoothing in (0, 1]
  Duration update_interval = msec(20);  // spec: fixed period, not per-ack
};

class FastCC : public CongestionControl {
 public:
  explicit FastCC(FastParams params = {}) : params_(params) {}

  void on_ack(const AckEvent& ev) override;
  void on_packet_loss(TimePoint now) override;
  void on_timeout(TimePoint now) override;

  [[nodiscard]] double cwnd_packets() const override { return cwnd_; }
  [[nodiscard]] const char* name() const override { return "FAST"; }
  [[nodiscard]] double base_rtt_s() const { return base_rtt_s_; }

 private:
  FastParams params_;
  double cwnd_ = 2.0;
  double base_rtt_s_ = 1e9;
  double srtt_s_ = 0.0;
  TimePoint next_update_{};
  bool has_update_time_ = false;
};

}  // namespace sprout

// Pluggable congestion-control interface for the TCP machinery.
//
// The paper compares Sprout against TCP Cubic (Linux default), TCP Vegas,
// Compound TCP (Windows default) and LEDBAT (µTP).  Each is implemented as
// a control law over this interface and driven by cc/tcp_endpoint.*, which
// supplies acks (with RTT and one-way-delay samples), loss signals, and
// timeouts.  Windows are in MSS-sized packets.
#pragma once

#include "util/units.h"

namespace sprout {

struct AckEvent {
  TimePoint now{};
  Duration rtt{};            // sender-measured round trip
  Duration one_way_delay{};  // receiver-measured (for LEDBAT)
  std::int64_t newly_acked = 0;  // packets cumulatively acked by this ack
  std::int64_t inflight = 0;     // packets outstanding after this ack
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_ack(const AckEvent& ev) = 0;

  // Loss inferred from duplicate acks (fast retransmit).
  virtual void on_packet_loss(TimePoint now) = 0;

  // Retransmission timeout: collapse to one segment.
  virtual void on_timeout(TimePoint now) = 0;

  [[nodiscard]] virtual double cwnd_packets() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace sprout

#include "cc/fast.h"

#include <algorithm>

namespace sprout {

void FastCC::on_ack(const AckEvent& ev) {
  const double rtt_s = std::max(1e-4, to_seconds(ev.rtt));
  base_rtt_s_ = std::min(base_rtt_s_, rtt_s);
  // FAST uses a smoothed RTT in the window law (the paper's implementation
  // averages over a window of acks; an EWMA keeps the same time constant).
  srtt_s_ = srtt_s_ == 0.0 ? rtt_s : 0.875 * srtt_s_ + 0.125 * rtt_s;

  if (!has_update_time_) {
    has_update_time_ = true;
    next_update_ = ev.now + params_.update_interval;
    return;
  }
  if (ev.now < next_update_) return;
  next_update_ = ev.now + params_.update_interval;

  const double target =
      (1.0 - params_.gamma) * cwnd_ +
      params_.gamma * (base_rtt_s_ / srtt_s_ * cwnd_ + params_.alpha);
  cwnd_ = std::max(2.0, std::min(2.0 * cwnd_, target));
}

void FastCC::on_packet_loss(TimePoint) {
  // FAST is delay-based; on loss it halves like conventional TCP.
  cwnd_ = std::max(2.0, cwnd_ / 2.0);
}

void FastCC::on_timeout(TimePoint) {
  cwnd_ = 2.0;
  srtt_s_ = 0.0;
}

}  // namespace sprout

// TCP Vegas (Brakmo & Peterson 1994) — the paper's delay-based baseline.
// Once per RTT, compares the expected rate (cwnd/baseRTT) with the actual
// rate (cwnd/RTT); keeps the backlog estimate diff = (expected-actual) *
// baseRTT between alpha and beta packets.
#pragma once

#include "cc/congestion_control.h"

namespace sprout {

struct VegasParams {
  double alpha = 2.0;  // grow below this backlog (packets)
  double beta = 4.0;   // shrink above this backlog
  double gamma = 1.0;  // leave slow start above this backlog
};

class VegasCC : public CongestionControl {
 public:
  explicit VegasCC(VegasParams params = {}) : params_(params) {}

  void on_ack(const AckEvent& ev) override;
  void on_packet_loss(TimePoint now) override;
  void on_timeout(TimePoint now) override;

  [[nodiscard]] double cwnd_packets() const override { return cwnd_; }
  [[nodiscard]] const char* name() const override { return "Vegas"; }
  [[nodiscard]] double base_rtt_s() const { return base_rtt_s_; }

 private:
  VegasParams params_;
  double cwnd_ = 2.0;
  bool slow_start_ = true;
  double base_rtt_s_ = 1e9;
  double epoch_min_rtt_s_ = 1e9;
  TimePoint epoch_end_{};
  bool epoch_started_ = false;
  bool grow_this_epoch_ = true;  // Vegas doubles every OTHER RTT in slow start
};

}  // namespace sprout

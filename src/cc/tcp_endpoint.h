// Minimal but real TCP machinery driving the pluggable congestion
// controllers over the emulated link: MSS-sized segments, cumulative acks,
// RTT estimation per RFC 6298, duplicate-ack fast retransmit, and
// exponential-backoff retransmission timeouts (go-back-N recovery, which is
// sufficient and conservative for a FIFO emulated path).
#pragma once

#include <cstdint>
#include <memory>
#include <set>

#include "cc/congestion_control.h"
#include "sim/packet.h"
#include "sim/simulator.h"

namespace sprout {

class TcpSender : public PacketSink {
 public:
  TcpSender(Simulator& sim, std::unique_ptr<CongestionControl> cc,
            std::int64_t flow_id, ByteCount mss = kMtuBytes);

  void attach_network(PacketSink& out) { network_ = &out; }
  void start();

  // Acks arrive here (from the reverse-direction link).
  void receive(Packet&& ack) override;

  [[nodiscard]] const CongestionControl& congestion_control() const {
    return *cc_;
  }
  [[nodiscard]] std::int64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::int64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::int64_t timeouts() const { return timeouts_; }

 private:
  void try_send();
  void send_segment(std::int64_t seq);
  void arm_rto();
  void on_rto(std::uint64_t generation);
  void update_rtt(Duration sample);

  Simulator& sim_;
  std::unique_ptr<CongestionControl> cc_;
  std::int64_t flow_id_;
  ByteCount mss_;
  PacketSink* network_ = nullptr;

  std::int64_t next_seq_ = 0;  // next new segment number
  std::int64_t una_ = 0;       // oldest unacknowledged segment
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;

  // RFC 6298 state (microseconds).
  double srtt_us_ = 0.0;
  double rttvar_us_ = 0.0;
  bool have_rtt_ = false;
  Duration rto_ = msec(1000);
  std::uint64_t rto_generation_ = 0;
  bool rto_armed_ = false;

  std::int64_t packets_sent_ = 0;
  std::int64_t retransmits_ = 0;
  std::int64_t timeouts_ = 0;
};

// Acks every arriving segment with the cumulative next-expected sequence,
// echoing the segment's timestamp and reporting the measured one-way delay.
class TcpReceiver : public PacketSink {
 public:
  TcpReceiver(Simulator& sim, std::int64_t flow_id);

  void attach_ack_path(PacketSink& out) { ack_path_ = &out; }

  void receive(Packet&& p) override;

  [[nodiscard]] std::int64_t next_expected() const { return next_expected_; }
  [[nodiscard]] std::int64_t duplicate_segments() const { return duplicates_; }

 private:
  Simulator& sim_;
  std::int64_t flow_id_;
  PacketSink* ack_path_ = nullptr;
  std::int64_t next_expected_ = 0;
  std::set<std::int64_t> out_of_order_;
  std::int64_t duplicates_ = 0;
};

}  // namespace sprout

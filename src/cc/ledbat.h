// LEDBAT (RFC 6817), the low-extra-delay background transport used by µTP.
// A one-way-delay controller: it maintains a base (minimum) delay estimate
// and gains or sheds window proportionally to how far the current queuing
// delay sits from the 100 ms target.
#pragma once

#include <array>

#include "cc/congestion_control.h"

namespace sprout {

struct LedbatParams {
  Duration target = msec(100);
  double gain = 1.0;
  // Base delay is the minimum over this many one-minute history buckets.
  int base_history_minutes = 10;
};

class LedbatCC : public CongestionControl {
 public:
  explicit LedbatCC(LedbatParams params = {});

  void on_ack(const AckEvent& ev) override;
  void on_packet_loss(TimePoint now) override;
  void on_timeout(TimePoint now) override;

  [[nodiscard]] double cwnd_packets() const override { return cwnd_; }
  [[nodiscard]] const char* name() const override { return "LEDBAT"; }
  [[nodiscard]] double base_delay_s() const;

 private:
  void roll_history(TimePoint now);

  LedbatParams params_;
  double cwnd_ = 2.0;
  std::array<double, 16> history_{};  // per-minute minimums, seconds
  int history_used_ = 0;
  TimePoint minute_start_{};
  bool started_ = false;
};

}  // namespace sprout

#include "cc/tcp_endpoint.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sprout {

namespace {
constexpr Duration kMinRto = msec(200);
constexpr Duration kMaxRto = sec(60);
constexpr ByteCount kAckBytes = 40;
}  // namespace

TcpSender::TcpSender(Simulator& sim, std::unique_ptr<CongestionControl> cc,
                     std::int64_t flow_id, ByteCount mss)
    : sim_(sim), cc_(std::move(cc)), flow_id_(flow_id), mss_(mss) {
  assert(cc_ != nullptr);
}

void TcpSender::start() {
  assert(network_ != nullptr && "attach_network before start");
  try_send();
}

void TcpSender::update_rtt(Duration sample) {
  const double r = static_cast<double>(sample.count());
  if (!have_rtt_) {
    srtt_us_ = r;
    rttvar_us_ = r / 2.0;
    have_rtt_ = true;
  } else {
    rttvar_us_ = 0.75 * rttvar_us_ + 0.25 * std::abs(srtt_us_ - r);
    srtt_us_ = 0.875 * srtt_us_ + 0.125 * r;
  }
  const auto rto_us = static_cast<std::int64_t>(srtt_us_ + 4.0 * rttvar_us_);
  rto_ = std::clamp(Duration{rto_us}, kMinRto, kMaxRto);
}

void TcpSender::receive(Packet&& ack) {
  if (ack.ack > una_) {
    const std::int64_t newly = ack.ack - una_;
    una_ = ack.ack;
    dupacks_ = 0;
    const Duration rtt = sim_.now() - ack.echo;
    update_rtt(rtt);
    if (in_recovery_ && una_ > recover_) in_recovery_ = false;
    AckEvent ev;
    ev.now = sim_.now();
    ev.rtt = rtt;
    ev.one_way_delay = usec(ack.meta);
    ev.newly_acked = newly;
    ev.inflight = next_seq_ - una_;
    cc_->on_ack(ev);
    arm_rto();  // fresh data acked: restart the retransmission timer
  } else if (next_seq_ > una_) {
    ++dupacks_;
    if (dupacks_ == 3 && !in_recovery_) {
      in_recovery_ = true;
      recover_ = next_seq_ - 1;
      cc_->on_packet_loss(sim_.now());
      send_segment(una_);  // fast retransmit
      ++retransmits_;
    }
  }
  try_send();
}

void TcpSender::try_send() {
  const auto cwnd = static_cast<std::int64_t>(
      std::max(1.0, std::floor(cc_->cwnd_packets())));
  while (next_seq_ - una_ < cwnd) {
    send_segment(next_seq_);
    ++next_seq_;
  }
  if (next_seq_ > una_ && !rto_armed_) arm_rto();
}

void TcpSender::send_segment(std::int64_t seq) {
  Packet p;
  p.flow_id = flow_id_;
  p.size = mss_;
  p.seq = seq;
  p.sent_at = sim_.now();
  p.echo = sim_.now();
  network_->receive(std::move(p));
  ++packets_sent_;
}

void TcpSender::arm_rto() {
  ++rto_generation_;
  rto_armed_ = true;
  const std::uint64_t gen = rto_generation_;
  sim_.after(rto_, [this, gen] { on_rto(gen); });
}

void TcpSender::on_rto(std::uint64_t generation) {
  if (generation != rto_generation_) return;  // superseded by newer arm
  rto_armed_ = false;
  if (next_seq_ == una_) return;  // nothing outstanding
  ++timeouts_;
  cc_->on_timeout(sim_.now());
  rto_ = std::min(rto_ * 2, kMaxRto);  // Karn backoff
  dupacks_ = 0;
  in_recovery_ = false;
  // Go-back-N: resend from the first unacked segment.
  next_seq_ = una_;
  try_send();
}

TcpReceiver::TcpReceiver(Simulator& sim, std::int64_t flow_id)
    : sim_(sim), flow_id_(flow_id) {}

void TcpReceiver::receive(Packet&& p) {
  if (p.seq == next_expected_) {
    ++next_expected_;
    while (!out_of_order_.empty() &&
           *out_of_order_.begin() == next_expected_) {
      out_of_order_.erase(out_of_order_.begin());
      ++next_expected_;
    }
  } else if (p.seq > next_expected_) {
    out_of_order_.insert(p.seq);
  } else {
    ++duplicates_;
  }
  assert(ack_path_ != nullptr && "attach_ack_path before traffic");
  Packet ack;
  ack.flow_id = flow_id_;
  ack.size = kAckBytes;
  ack.ack = next_expected_;
  ack.echo = p.echo;
  ack.sent_at = sim_.now();
  ack.meta = (sim_.now() - p.sent_at).count();  // one-way delay, µs
  ack_path_->receive(std::move(ack));
}

}  // namespace sprout

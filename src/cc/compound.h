// Compound TCP (Tan, Song, Zhang, Sridharan — INFOCOM 2006), the Windows
// default the paper tested.  The window is the sum of a Reno-style loss
// window and a delay-scaled window dwnd that grows binomially while the
// estimated backlog stays below gamma and retreats when it exceeds it.
#pragma once

#include "cc/congestion_control.h"
#include "cc/reno.h"

namespace sprout {

struct CompoundParams {
  double alpha = 0.125;  // dwnd growth scale
  double beta = 0.5;     // dwnd multiplicative decrease on loss
  double k = 0.75;       // dwnd growth exponent
  double gamma = 30.0;   // backlog threshold (packets)
  double zeta = 1.0;     // backlog drain factor
};

class CompoundCC : public CongestionControl {
 public:
  explicit CompoundCC(CompoundParams params = {}) : params_(params) {}

  void on_ack(const AckEvent& ev) override;
  void on_packet_loss(TimePoint now) override;
  void on_timeout(TimePoint now) override;

  [[nodiscard]] double cwnd_packets() const override {
    return loss_window_.cwnd_packets() + dwnd_;
  }
  [[nodiscard]] const char* name() const override { return "Compound"; }
  [[nodiscard]] double dwnd() const { return dwnd_; }

 private:
  CompoundParams params_;
  RenoCC loss_window_;
  double dwnd_ = 0.0;
  double base_rtt_s_ = 1e9;
  double epoch_min_rtt_s_ = 1e9;
  TimePoint epoch_end_{};
  bool epoch_started_ = false;
};

}  // namespace sprout

#include "cc/vegas.h"

#include <algorithm>

namespace sprout {

void VegasCC::on_ack(const AckEvent& ev) {
  const double rtt_s = std::max(1e-4, to_seconds(ev.rtt));
  base_rtt_s_ = std::min(base_rtt_s_, rtt_s);
  epoch_min_rtt_s_ = std::min(epoch_min_rtt_s_, rtt_s);

  if (!epoch_started_) {
    epoch_started_ = true;
    epoch_end_ = ev.now + from_seconds(rtt_s);
    return;
  }
  if (ev.now < epoch_end_) return;

  // One RTT's worth of samples gathered: run the Vegas update.
  const double expected = cwnd_ / base_rtt_s_;
  const double actual = cwnd_ / epoch_min_rtt_s_;
  const double diff = (expected - actual) * base_rtt_s_;  // backlog packets

  if (slow_start_) {
    if (diff > params_.gamma) {
      slow_start_ = false;
      cwnd_ = std::max(2.0, cwnd_ - diff);  // shed the standing queue
    } else if (grow_this_epoch_) {
      cwnd_ *= 2.0;  // double every other RTT
    }
    grow_this_epoch_ = !grow_this_epoch_;
  } else {
    if (diff < params_.alpha) {
      cwnd_ += 1.0;
    } else if (diff > params_.beta) {
      cwnd_ = std::max(2.0, cwnd_ - 1.0);
    }
  }
  epoch_min_rtt_s_ = 1e9;
  epoch_end_ = ev.now + from_seconds(std::max(1e-3, epoch_min_rtt_s_ == 1e9
                                                        ? rtt_s
                                                        : epoch_min_rtt_s_));
}

void VegasCC::on_packet_loss(TimePoint) {
  cwnd_ = std::max(2.0, cwnd_ / 2.0);
  slow_start_ = false;
}

void VegasCC::on_timeout(TimePoint) {
  cwnd_ = 2.0;
  slow_start_ = true;
  grow_this_epoch_ = true;
}

}  // namespace sprout

#include "cc/cubic.h"

#include <algorithm>
#include <cmath>

namespace sprout {

double CubicCC::w_cubic(double t_seconds) const {
  const double dt = t_seconds - k_;
  return params_.c * dt * dt * dt + w_max_;
}

void CubicCC::on_ack(const AckEvent& ev) {
  const double rtt_s = std::max(1e-3, to_seconds(ev.rtt));
  srtt_s_ = 0.875 * srtt_s_ + 0.125 * rtt_s;

  for (std::int64_t i = 0; i < ev.newly_acked; ++i) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;
      continue;
    }
    if (!epoch_valid_) {
      epoch_start_ = ev.now;
      epoch_valid_ = true;
      if (w_max_ < cwnd_) {
        // No loss since we exceeded the old maximum: anchor here.
        w_max_ = cwnd_;
        k_ = 0.0;
      } else {
        k_ = std::cbrt(w_max_ * (1.0 - params_.beta) / params_.c);
      }
      w_est_ = cwnd_;
    }
    const double t = to_seconds(ev.now - epoch_start_);
    // Target one RTT ahead, per the RFC's window-increase rule.
    const double target = w_cubic(t + srtt_s_);
    if (target > cwnd_) {
      cwnd_ += (target - cwnd_) / cwnd_;
    } else {
      cwnd_ += 0.01 / cwnd_;  // minimal growth in the concave plateau
    }
    // TCP-friendly region: never slower than Reno's AIMD average.
    w_est_ += 3.0 * (1.0 - params_.beta) / (1.0 + params_.beta) / cwnd_;
    cwnd_ = std::max(cwnd_, std::min(w_est_, w_max_ * 2.0));
  }
}

void CubicCC::on_packet_loss(TimePoint) {
  if (params_.fast_convergence && cwnd_ < w_max_) {
    // Window never recovered: release bandwidth faster.
    w_max_ = cwnd_ * (1.0 + params_.beta) / 2.0;
  } else {
    w_max_ = cwnd_;
  }
  cwnd_ = std::max(2.0, cwnd_ * params_.beta);
  ssthresh_ = cwnd_;
  k_ = std::cbrt(w_max_ * (1.0 - params_.beta) / params_.c);
  epoch_valid_ = false;
}

void CubicCC::on_timeout(TimePoint) {
  w_max_ = cwnd_;
  ssthresh_ = std::max(2.0, cwnd_ * params_.beta);
  cwnd_ = 1.0;
  epoch_valid_ = false;
}

}  // namespace sprout

// Google Congestion Control (GCC) for real-time media — the paper's [15].
//
// §6 of the paper: "Google has proposed a congestion-control scheme for the
// WebRTC system that uses an arrival-time filter at the receiver, along
// with other congestion signals ... We plan to investigate this system and
// assess it on the same metrics as the other schemes in our evaluation."
// This module is that promised comparison, implemented from
// draft-alvestrand-rtcweb-congestion-03 (2012), the revision the paper
// cites.
//
// The algorithm splits in two:
//   receiver side — an arrival-time Kalman filter estimates the one-way
//     queuing-delay gradient m(i); an over-use detector with an adaptive
//     threshold turns m(i) into {UNDERUSE, NORMAL, OVERUSE} signals; an
//     AIMD remote-rate controller converts signals plus the measured
//     incoming rate R_hat into a receiver rate cap A_r (fed back as REMB).
//   sender side — a loss-based controller adjusts the sending estimate A_s
//     from the reported loss fraction; the pacer sends at min(A_s, A_r).
//
// Everything stateful is a plain class with explicit inputs so the control
// laws are unit-testable without the simulator; cc/gcc_endpoint.* wires
// them to packets.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "util/units.h"

namespace sprout {

// One inter-group delta measurement: the change in arrival spacing versus
// send spacing between consecutive packet groups, d(i) = dt_arrival -
// dt_send, plus the group-size change dL(i) used by the capacity state.
struct ArrivalDelta {
  double arrival_delta_ms = 0.0;
  double send_delta_ms = 0.0;
  double size_delta_bytes = 0.0;
};

// Groups packets into send-time bursts and emits one ArrivalDelta per
// completed group pair.  The draft filters per "frame" / packet group:
// packets sent within `burst_window` of the group's first packet belong to
// the same group (a pacer emits a frame as a burst of MTU packets).
class InterArrivalGrouper {
 public:
  explicit InterArrivalGrouper(Duration burst_window = msec(5))
      : burst_window_(burst_window) {}

  // Feeds one packet; returns a delta when `sent_at` starts a new group and
  // a previous complete group pair exists.
  std::optional<ArrivalDelta> on_packet(TimePoint sent_at, TimePoint arrived_at,
                                        ByteCount size);

  void reset();

 private:
  struct Group {
    TimePoint first_send{};
    TimePoint last_send{};
    TimePoint last_arrival{};
    double size_bytes = 0.0;
    bool valid = false;
  };

  Duration burst_window_;
  Group current_{};
  Group previous_{};
};

// Kalman filter over the state [1/C, m]: measured delta
//   d(i) = dL(i)/C + m(i) + v(i)
// where C is the bottleneck capacity, m the queuing-delay gradient, and v
// zero-mean measurement noise whose variance is estimated online.  Offsets
// are in milliseconds.
struct ArrivalFilterParams {
  // Process noise (per update) for [1/C, m].  The capacity component drifts
  // far slower than the gradient, as in the draft.
  double q_capacity = 1e-10;
  double q_gradient = 1e-2;
  // Initial state covariance.
  double p0_capacity = 1e-4;
  double p0_gradient = 1e-1;
  // EWMA gain for the measurement-noise variance estimate.
  double noise_gain = 0.05;
  // Outlier rejection: deltas more than this many noise std-devs from the
  // prediction update the noise estimate but are clamped for the state.
  double outlier_sigmas = 3.0;
};

class ArrivalFilter {
 public:
  explicit ArrivalFilter(ArrivalFilterParams params = {});

  // Processes one measurement and returns the updated gradient estimate
  // m(i) in milliseconds (per group).
  double update(const ArrivalDelta& delta);

  [[nodiscard]] double offset_ms() const { return m_; }
  [[nodiscard]] double inverse_capacity_ms_per_byte() const { return inv_c_; }
  // Capacity estimate implied by the filter state (kbit/s); 0 if unknown.
  [[nodiscard]] double capacity_estimate_kbps() const;
  [[nodiscard]] double noise_variance() const { return var_noise_; }
  [[nodiscard]] std::int64_t num_updates() const { return updates_; }

 private:
  ArrivalFilterParams params_;
  double inv_c_ = 0.0;  // ms per byte
  double m_ = 0.0;      // ms
  // Symmetric 2x2 covariance.
  double p00_, p01_, p11_;
  double var_noise_ = 10.0;
  std::int64_t updates_ = 0;
};

enum class BandwidthUsage { kNormal, kOverusing, kUnderusing };

[[nodiscard]] const char* to_string(BandwidthUsage u);

// Compares the filtered gradient against an adaptive threshold γ(t).
// OVERUSE is signalled only after the gradient has stayed above γ for
// `overuse_time_threshold` and is not falling; the threshold itself adapts
// toward |m| (fast up, slow down) so the detector stays sensitive when the
// gradient is quiet and tolerant when it is noisy.
struct OveruseDetectorParams {
  double initial_threshold_ms = 12.5;
  double min_threshold_ms = 6.0;
  double max_threshold_ms = 600.0;
  double gain_up = 0.01;      // k_u: applied when |m| > γ
  double gain_down = 0.00018; // k_d: applied when |m| <= γ
  Duration overuse_time_threshold = msec(10);
};

class OveruseDetector {
 public:
  explicit OveruseDetector(OveruseDetectorParams params = {});

  BandwidthUsage detect(double offset_ms, TimePoint now);

  [[nodiscard]] double threshold_ms() const { return threshold_; }
  [[nodiscard]] BandwidthUsage state() const { return state_; }

 private:
  void adapt_threshold(double offset_ms, TimePoint now);

  OveruseDetectorParams params_;
  double threshold_;
  BandwidthUsage state_ = BandwidthUsage::kNormal;
  double prev_offset_ = 0.0;
  TimePoint overuse_start_{};
  bool in_overuse_region_ = false;
  TimePoint last_update_{};
  bool has_last_update_ = false;
};

// Sliding-window estimate of the incoming bitrate R_hat (the draft measures
// over a ~0.5 s window).
class RateEstimator {
 public:
  explicit RateEstimator(Duration window = msec(500)) : window_(window) {}

  void on_packet(TimePoint arrival, ByteCount size);
  // Rate over the window ending at `now`, in kbit/s; nullopt until at least
  // two packets span a measurable interval.
  [[nodiscard]] std::optional<double> rate_kbps(TimePoint now) const;

 private:
  void evict(TimePoint now) const;

  Duration window_;
  mutable std::deque<std::pair<TimePoint, ByteCount>> samples_;
  mutable ByteCount window_bytes_ = 0;
};

// The remote-rate AIMD controller: turns {signal, R_hat} into the receiver
// rate cap A_r.  Multiplicative increase (≤8%/s) far from the observed
// capacity, additive (about one packet per response time) near it;
// multiplicative decrease A_r = β·R_hat on over-use.
struct AimdParams {
  double beta = 0.85;
  double start_rate_kbps = 300.0;
  double min_rate_kbps = 10.0;
  double max_rate_kbps = 30000.0;
  // "Near convergence" = R_hat within this many std-devs of the running
  // average of the R_hat values seen at past decreases.
  double convergence_sigmas = 3.0;
  Duration response_time = msec(200);  // RTT proxy + detector delay
  double additive_packet_bytes = 1200.0;
};

class AimdRateController {
 public:
  explicit AimdRateController(AimdParams params = {});

  // Feeds one detector signal with the current incoming-rate measurement.
  // Returns the updated A_r in kbit/s.
  double update(BandwidthUsage signal, std::optional<double> incoming_kbps,
                TimePoint now);

  [[nodiscard]] double rate_kbps() const { return rate_kbps_; }
  // True when the last update was a decrease — the draft sends REMB
  // feedback immediately in that case rather than waiting for the timer.
  [[nodiscard]] bool decreased_last_update() const { return decreased_; }

 private:
  enum class State { kHold, kIncrease, kDecrease };
  void transition(BandwidthUsage signal);

  AimdParams params_;
  State state_ = State::kIncrease;
  double rate_kbps_;
  bool decreased_ = false;
  TimePoint last_update_{};
  bool has_last_update_ = false;
  // Running mean/variance of R_hat at decrease events ("link capacity at
  // the knee"), for the multiplicative/additive switch.
  double avg_max_kbps_ = -1.0;
  double var_max_ = 0.4;  // relative variance, as in the draft
};

// Sender-side loss-based controller (§3.3 of the draft): the sending
// estimate A_s reacts only to the loss fraction reported in feedback.
struct LossControllerParams {
  double start_rate_kbps = 300.0;
  double min_rate_kbps = 10.0;
  double max_rate_kbps = 30000.0;
  double high_loss = 0.10;  // above: multiplicative decrease
  double low_loss = 0.02;   // below: gentle increase
};

class LossBasedController {
 public:
  explicit LossBasedController(LossControllerParams params = {});

  // Feeds one feedback report's loss fraction; returns updated A_s (kbps).
  double on_report(double loss_fraction);

  [[nodiscard]] double rate_kbps() const { return rate_kbps_; }

 private:
  LossControllerParams params_;
  double rate_kbps_;
};

}  // namespace sprout

#include "cc/ledbat.h"

#include <algorithm>

namespace sprout {

LedbatCC::LedbatCC(LedbatParams params) : params_(params) {
  history_.fill(1e9);
}

double LedbatCC::base_delay_s() const {
  double base = 1e9;
  const int used = std::max(1, history_used_);
  for (int i = 0; i < used && i < static_cast<int>(history_.size()); ++i) {
    base = std::min(base, history_[static_cast<std::size_t>(i)]);
  }
  return base;
}

void LedbatCC::roll_history(TimePoint now) {
  if (!started_) {
    started_ = true;
    minute_start_ = now;
    history_used_ = 1;
    return;
  }
  while (now - minute_start_ >= sec(60)) {
    // Shift a new bucket in (newest at index 0).
    for (std::size_t i = history_.size() - 1; i > 0; --i) {
      history_[i] = history_[i - 1];
    }
    history_[0] = 1e9;
    minute_start_ += sec(60);
    history_used_ = std::min(history_used_ + 1,
                             std::min<int>(params_.base_history_minutes,
                                           static_cast<int>(history_.size())));
  }
}

void LedbatCC::on_ack(const AckEvent& ev) {
  roll_history(ev.now);
  const double owd_s = to_seconds(ev.one_way_delay);
  history_[0] = std::min(history_[0], owd_s);

  const double queuing_delay = owd_s - base_delay_s();
  const double target = to_seconds(params_.target);
  const double off_target = (target - queuing_delay) / target;
  cwnd_ += params_.gain * off_target *
           static_cast<double>(ev.newly_acked) / cwnd_;
  // RFC 6817: clamp decrease and keep a minimum window.
  cwnd_ = std::max(2.0, cwnd_);
}

void LedbatCC::on_packet_loss(TimePoint) {
  cwnd_ = std::max(2.0, cwnd_ / 2.0);
}

void LedbatCC::on_timeout(TimePoint) { cwnd_ = 2.0; }

}  // namespace sprout

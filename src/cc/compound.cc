#include "cc/compound.h"

#include <algorithm>
#include <cmath>

namespace sprout {

void CompoundCC::on_ack(const AckEvent& ev) {
  loss_window_.on_ack(ev);

  const double rtt_s = std::max(1e-4, to_seconds(ev.rtt));
  base_rtt_s_ = std::min(base_rtt_s_, rtt_s);
  epoch_min_rtt_s_ = std::min(epoch_min_rtt_s_, rtt_s);
  if (!epoch_started_) {
    epoch_started_ = true;
    epoch_end_ = ev.now + from_seconds(rtt_s);
    return;
  }
  if (ev.now < epoch_end_) return;

  const double win = cwnd_packets();
  const double expected = win / base_rtt_s_;
  const double actual = win / epoch_min_rtt_s_;
  const double diff = (expected - actual) * base_rtt_s_;

  if (diff < params_.gamma) {
    // Delay headroom: binomial growth alpha * win^k (minus Reno's +1 that
    // the loss window already contributed this RTT).
    dwnd_ += std::max(0.0, params_.alpha * std::pow(win, params_.k) - 1.0);
  } else {
    // Backlog building: drain it from the delay window, and — the part
    // that matters on lossless deep-buffer cellular paths — stop the loss
    // window's slow start.  Without this, a bufferbloated link that never
    // drops lets Reno double forever and Compound degenerates into Cubic's
    // behaviour (we measured exactly that: identical Table-1 rows).
    // Deployed CTCP avoids it because its delay signal gates growth.
    dwnd_ = std::max(0.0, dwnd_ - params_.zeta * diff);
    loss_window_.exit_slow_start();
  }
  epoch_min_rtt_s_ = 1e9;
  epoch_end_ = ev.now + from_seconds(rtt_s);
}

void CompoundCC::on_packet_loss(TimePoint now) {
  loss_window_.on_packet_loss(now);
  dwnd_ = std::max(0.0, dwnd_ * (1.0 - params_.beta));
}

void CompoundCC::on_timeout(TimePoint now) {
  loss_window_.on_timeout(now);
  dwnd_ = 0.0;
}

}  // namespace sprout

// TCP Cubic (Ha, Rhee, Xu 2008; RFC 8312 constants) — Linux's default and
// the paper's main TCP baseline.  Window growth is a cubic function of time
// since the last loss, anchored at the pre-loss window W_max, with the
// standard TCP-friendly (Reno-tracking) region and fast convergence.
#pragma once

#include "cc/congestion_control.h"

namespace sprout {

struct CubicParams {
  double c = 0.4;       // cubic scaling constant
  double beta = 0.7;    // multiplicative decrease factor
  bool fast_convergence = true;
};

class CubicCC : public CongestionControl {
 public:
  explicit CubicCC(CubicParams params = {}) : params_(params) {}

  void on_ack(const AckEvent& ev) override;
  void on_packet_loss(TimePoint now) override;
  void on_timeout(TimePoint now) override;

  [[nodiscard]] double cwnd_packets() const override { return cwnd_; }
  [[nodiscard]] const char* name() const override { return "Cubic"; }
  [[nodiscard]] double w_max() const { return w_max_; }

 private:
  [[nodiscard]] double w_cubic(double t_seconds) const;

  CubicParams params_;
  double cwnd_ = 2.0;
  double ssthresh_ = 1e9;
  double w_max_ = 0.0;
  double k_ = 0.0;               // time to regain w_max
  TimePoint epoch_start_{};      // set on first ack after a loss
  bool epoch_valid_ = false;
  double w_est_ = 0.0;           // Reno-friendly estimate
  double srtt_s_ = 0.1;          // smoothed RTT for the friendly region
};

}  // namespace sprout

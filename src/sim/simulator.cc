#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace sprout {

void Simulator::at(TimePoint t, Callback fn) {
  assert(t >= now_ && "cannot schedule events in the past");
  assert(fn && "null event callback");
  events_.push(Event{t, next_order_++, current_scope_, std::move(fn)});
}

Simulator::ScopeId Simulator::new_scope() {
  cancelled_.push_back(false);
  return static_cast<ScopeId>(cancelled_.size() - 1);
}

void Simulator::cancel_scope(ScopeId scope) {
  if (scope == kRootScope) {
    throw std::invalid_argument("the root scope cannot be cancelled");
  }
  if (scope >= cancelled_.size()) {
    throw std::invalid_argument("cancel of an unknown scope");
  }
  cancelled_[scope] = true;
}

void Simulator::prune_cancelled() {
  while (!events_.empty() && cancelled_[events_.top().scope]) {
    events_.pop();
    ++cancelled_events_;
  }
}

bool Simulator::step() {
  prune_cancelled();
  if (events_.empty()) return false;
  // priority_queue::top returns const&; the callback must be moved out
  // before pop, so copy the small fields and move the function.
  Event ev = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ++processed_;
  // Events scheduled by this callback inherit its scope, so a flow's whole
  // causal chain stays cancellable without the flow knowing about scopes.
  const ScopeId prev = current_scope_;
  current_scope_ = ev.scope;
  ev.fn();
  current_scope_ = prev;
  return true;
}

void Simulator::run_until(TimePoint t) {
  for (;;) {
    prune_cancelled();
    if (events_.empty() || events_.top().time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace sprout

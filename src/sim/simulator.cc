#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace sprout {

void Simulator::at(TimePoint t, Callback fn) {
  assert(t >= now_ && "cannot schedule events in the past");
  assert(fn && "null event callback");
  events_.push(Event{t, next_order_++, std::move(fn)});
}

bool Simulator::step() {
  if (events_.empty()) return false;
  // priority_queue::top returns const&; the callback must be moved out
  // before pop, so copy the small fields and move the function.
  Event ev = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

void Simulator::run_until(TimePoint t) {
  while (!events_.empty() && events_.top().time <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace sprout

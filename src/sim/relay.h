// Small plumbing sinks used to wire experiment topologies.
#pragma once

#include <cstdint>
#include <map>

#include "sim/packet.h"

namespace sprout {

// Breaks construction-order cycles: links need their egress sink at
// construction time, endpoints need the link.  Point the relay at the real
// target once it exists.
class RelaySink : public PacketSink {
 public:
  void set_target(PacketSink& target) { target_ = &target; }

  void receive(Packet&& p) override {
    if (target_ != nullptr) {
      target_->receive(std::move(p));
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] std::int64_t dropped() const { return dropped_; }

 private:
  PacketSink* target_ = nullptr;
  std::int64_t dropped_ = 0;
};

// Routes packets by flow id (shared-queue experiments, §5.7).
class DemuxSink : public PacketSink {
 public:
  void route(std::int64_t flow_id, PacketSink& sink) {
    routes_[flow_id] = &sink;
  }

  void receive(Packet&& p) override {
    const auto it = routes_.find(p.flow_id);
    if (it != routes_.end()) {
      it->second->receive(std::move(p));
    } else {
      ++unrouted_;
    }
  }

  [[nodiscard]] std::int64_t unrouted() const { return unrouted_; }

 private:
  std::map<std::int64_t, PacketSink*> routes_;
  std::int64_t unrouted_ = 0;
};

}  // namespace sprout

// Small plumbing sinks used to wire experiment topologies.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "sim/packet.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace sprout {

// Breaks construction-order cycles: links need their egress sink at
// construction time, endpoints need the link.  Point the relay at the real
// target once it exists.
class RelaySink : public PacketSink {
 public:
  void set_target(PacketSink& target) { target_ = &target; }

  void receive(Packet&& p) override {
    if (target_ != nullptr) {
      target_->receive(std::move(p));
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] std::int64_t dropped() const { return dropped_; }

 private:
  PacketSink* target_ = nullptr;
  std::int64_t dropped_ = 0;
};

// Forwards packets until a closing time, then drops them.  Models a flow
// that leaves the network at a known instant (heterogeneous shared-queue
// topologies): the gate sits at a link ingress, so a departed flow's
// traffic never enters the shared queue again even though its endpoints'
// clocks keep running.
class GateSink : public PacketSink {
 public:
  GateSink(Simulator& sim, PacketSink& next, TimePoint close_at)
      : sim_(sim), next_(&next), close_at_(close_at) {}

  void receive(Packet&& p) override {
    if (sim_.now() < close_at_) {
      next_->receive(std::move(p));
    } else {
      ++gated_;
    }
  }

  [[nodiscard]] std::int64_t gated() const { return gated_; }

 private:
  Simulator& sim_;
  PacketSink* next_;
  TimePoint close_at_;
  std::int64_t gated_ = 0;
};

// A fixed-delay, optionally lossy pipe with no queueing dynamics: every
// accepted packet arrives exactly `delay` later.  The tower topology's
// shared uplink feedback path uses this instead of a full CellsimLink —
// per-user feedback is tiny and uncontended, and a simple pipe keeps the
// reverse direction O(1) per packet for thousands of users.
//
// Scope note: the delivery event is scheduled from receive(), so it
// inherits the SENDER's event scope (sim/simulator.h).  A departed tower
// user's in-flight feedback is therefore cancelled with the rest of its
// causal chain — exactly the "departed users cost nothing" contract.
class DelayLink : public PacketSink {
 public:
  DelayLink(Simulator& sim, Duration delay, double loss_rate,
            std::uint64_t seed)
      : sim_(sim), delay_(delay), loss_rate_(loss_rate), rng_(seed) {}

  void set_target(PacketSink& target) { target_ = &target; }

  void receive(Packet&& p) override {
    if (loss_rate_ > 0.0 && rng_.bernoulli(loss_rate_)) {
      ++dropped_;
      return;
    }
    ++accepted_;
    sim_.after(delay_, [this, pkt = std::move(p)]() mutable {
      if (target_ != nullptr) target_->receive(std::move(pkt));
    });
  }

  [[nodiscard]] std::int64_t accepted() const { return accepted_; }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }

 private:
  Simulator& sim_;
  Duration delay_;
  double loss_rate_;
  Rng rng_;
  PacketSink* target_ = nullptr;
  std::int64_t accepted_ = 0;
  std::int64_t dropped_ = 0;
};

// Routes packets by flow id (shared-queue experiments, §5.7).
//
// Also the authoritative per-flow delivery ledger: every routed packet's
// wire bytes are credited to its flow id, whether or not any metrics window
// is still open.  That closes the drain-tail attribution gap (scenario.h):
// bytes a stopped flow's standing queue drains after the stop instant are
// outside every measurement window, but they still left the link as THAT
// flow's packets, and delivered_bytes() says so.
class DemuxSink : public PacketSink {
 public:
  void route(std::int64_t flow_id, PacketSink& sink) {
    routes_[flow_id] = &sink;
  }

  void receive(Packet&& p) override {
    const auto it = routes_.find(p.flow_id);
    if (it != routes_.end()) {
      delivered_bytes_[p.flow_id] += p.size;
      it->second->receive(std::move(p));
    } else {
      ++unrouted_;
    }
  }

  [[nodiscard]] std::int64_t unrouted() const { return unrouted_; }

  // Total wire bytes routed for one flow over the demux's whole lifetime.
  [[nodiscard]] ByteCount delivered_bytes(std::int64_t flow_id) const {
    const auto it = delivered_bytes_.find(flow_id);
    return it != delivered_bytes_.end() ? it->second : 0;
  }

 private:
  std::map<std::int64_t, PacketSink*> routes_;
  std::map<std::int64_t, ByteCount> delivered_bytes_;
  std::int64_t unrouted_ = 0;
};

}  // namespace sprout

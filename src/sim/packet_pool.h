// Flat payload-buffer pool for the packet hot path.
//
// Every Sprout wire packet used to heap-allocate a fresh payload vector in
// serialize() and free it a propagation delay later in receive(); in a
// tower scenario with a thousand concurrent flows that is two allocator
// round-trips per packet on the hottest path in the engine.  The pool keeps
// recycled payload buffers (capacity intact, contents cleared) in a flat
// free list owned by the Simulator, so steady-state packet emission reuses
// a bounded set of buffers instead of churning the allocator.
//
// Pure capacity reuse — no pointer identity escapes, so simulation results
// are bit-identical with or without recycling.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace sprout {

class PacketPool {
 public:
  // An empty buffer, reusing a recycled one's capacity when available.
  [[nodiscard]] std::vector<std::uint8_t> acquire() {
    if (free_.empty()) return {};
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    ++reused_;
    return buf;
  }

  // Returns a payload buffer to the pool.  Capacity-less buffers are not
  // worth keeping; the cap bounds the pool's memory at a few MB even if a
  // burst parks many buffers at once.
  void recycle(std::vector<std::uint8_t>&& buf) {
    if (buf.capacity() == 0 || free_.size() >= kMaxFree) return;
    free_.push_back(std::move(buf));
  }

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }
  [[nodiscard]] std::uint64_t reused() const { return reused_; }

 private:
  static constexpr std::size_t kMaxFree = 4096;
  std::vector<std::vector<std::uint8_t>> free_;
  std::uint64_t reused_ = 0;
};

}  // namespace sprout

// The unit of data moved through the simulated network.
//
// Sprout serializes a real wire header into `payload` (the paper's protocol
// is the artifact under test, so its bytes are genuine).  The simpler
// schemes (TCP machinery, video-app models) use the scratch header fields
// below instead of paying for serialization; both kinds of packet are
// byte-accounted identically by the link.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace sprout {

struct Packet {
  // Identity of the flow this packet belongs to (assigned by endpoints;
  // used by the tunnel's flow classifier and by per-flow metrics).
  std::int64_t flow_id = 0;

  // Bytes this packet occupies on the wire (header + payload).
  ByteCount size = 0;

  // Stamped by the sending endpoint when the packet enters the network.
  TimePoint sent_at{};

  // Stamped by the link queue on arrival; AQM reads it for sojourn time.
  TimePoint enqueued_at{};

  // Scratch transport-header fields for non-serializing protocols.
  std::int64_t seq = 0;
  std::int64_t ack = 0;
  std::int64_t meta = 0;
  TimePoint echo{};

  // Serialized protocol bytes (Sprout wire format, tunnel encapsulation).
  std::vector<std::uint8_t> payload;

  // Client packets encapsulated in this packet (SproutTunnel).  Their byte
  // sizes are counted inside `size`; this carries their metadata across the
  // emulated path the way a real tunnel's framing would.
  std::vector<Packet> tunneled;
};

// Anything that can accept a packet: endpoints, links, queues, tunnels.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void receive(Packet&& p) = 0;
};

}  // namespace sprout

// Deterministic single-threaded discrete-event simulator.
//
// Events fire in (time, insertion-order) order, so runs are exactly
// reproducible for a fixed seed.  All components hold a reference to the
// Simulator and schedule their own callbacks; there is no global state.
//
// Flow scopes: every event carries the scope that was current when it was
// scheduled, and events scheduled from inside a running event inherit that
// event's scope.  cancel_scope() retires a whole scope in O(1): its pending
// events are skipped (not run) when they surface at the head of the queue,
// and — because a retired flow's callbacks never run — it schedules nothing
// further.  That makes the event queue O(log n) in ACTIVE flows for a
// churning tower scenario: a departed user's endpoints stop costing
// anything the moment their scope is cancelled, with no event-handle
// bookkeeping on the hot scheduling path.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/packet_pool.h"
#include "util/units.h"

namespace sprout {

class Simulator {
 public:
  using Callback = std::function<void()>;
  using ScopeId = std::uint32_t;

  // The root scope: always live, never cancellable.
  static constexpr ScopeId kRootScope = 0;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedules `fn` at absolute time `t` (must not be in the past), in the
  // current scope.
  void at(TimePoint t, Callback fn);

  // Schedules `fn` after a relative delay.
  void after(Duration d, Callback fn) { at(now_ + d, std::move(fn)); }

  // Runs the next pending live event; returns false if none remain.
  // Cancelled-scope events encountered on the way are discarded unrun.
  bool step();

  // Runs all live events with time <= t, then advances the clock to t.
  void run_until(TimePoint t);

  void run_for(Duration d) { run_until(now_ + d); }

  // --- flow scopes -------------------------------------------------------

  // A fresh scope (child of nothing; scopes do not nest hierarchically).
  [[nodiscard]] ScopeId new_scope();

  // Retires a scope: its pending events will be discarded instead of run.
  // The root scope cannot be cancelled.  O(1); the queue is never scanned.
  void cancel_scope(ScopeId scope);

  [[nodiscard]] ScopeId current_scope() const { return current_scope_; }
  [[nodiscard]] bool scope_cancelled(ScopeId scope) const {
    return scope < cancelled_.size() && cancelled_[scope];
  }

  // Sets the current scope for the guard's lifetime, so everything a
  // flow schedules during construction/teardown lands in its scope.
  class ScopeGuard {
   public:
    ScopeGuard(Simulator& sim, ScopeId scope)
        : sim_(sim), prev_(sim.current_scope_) {
      sim_.current_scope_ = scope;
    }
    ~ScopeGuard() { sim_.current_scope_ = prev_; }
    ScopeGuard(const ScopeGuard&) = delete;
    ScopeGuard& operator=(const ScopeGuard&) = delete;

   private:
    Simulator& sim_;
    ScopeId prev_;
  };

  // --- packet payload pool ------------------------------------------------

  [[nodiscard]] PacketPool& pool() { return pool_; }

  [[nodiscard]] std::size_t pending() const { return events_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_events_; }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t order;  // tie-break: FIFO among same-time events
    ScopeId scope;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.order > b.order;
    }
  };

  // Discards cancelled-scope events at the head of the queue.
  void prune_cancelled();

  TimePoint now_{};
  std::uint64_t next_order_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t cancelled_events_ = 0;
  ScopeId current_scope_ = kRootScope;
  std::vector<bool> cancelled_{false};  // indexed by ScopeId
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  PacketPool pool_;
};

}  // namespace sprout

// Deterministic single-threaded discrete-event simulator.
//
// Events fire in (time, insertion-order) order, so runs are exactly
// reproducible for a fixed seed.  All components hold a reference to the
// Simulator and schedule their own callbacks; there is no global state.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.h"

namespace sprout {

class Simulator {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedules `fn` at absolute time `t` (must not be in the past).
  void at(TimePoint t, Callback fn);

  // Schedules `fn` after a relative delay.
  void after(Duration d, Callback fn) { at(now_ + d, std::move(fn)); }

  // Runs the next pending event; returns false if none remain.
  bool step();

  // Runs all events with time <= t, then advances the clock to t.
  void run_until(TimePoint t);

  void run_for(Duration d) { run_until(now_ + d); }

  [[nodiscard]] std::size_t pending() const { return events_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t order;  // tie-break: FIFO among same-time events
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.order > b.order;
    }
  };

  TimePoint now_{};
  std::uint64_t next_order_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace sprout

// Stochastic channel synthesis — parametric cellular traces on demand.
//
// The reproduction used to be able to exercise only the eight checked-in
// preset links plus one Cox-process family; scenario diversity was capped
// by what was committed.  A SynthSpec instead DESCRIBES a channel — a base
// rate process (or a saved trace) plus a chain of composable ops — and the
// generator materializes a delivery-opportunity Trace of any duration from
// it, deterministically, from a single seed:
//
//     base ∈ { brownian   (the paper's §4 model, matched to Sprout),
//              markov     (MMPP regime switching),
//              cox        (OU + Pareto outages; the mismatched family),
//              preset     (one of the eight traced networks),
//              trace-file (a mahimahi capture on disk) }
//     ops  =  [ outage | sawtooth | scale | jitter | splice, ... ]
//
// Everything is a pure function of (spec, duration): synth_key() spells
// every field into a canonical string, the per-sweep trace cache
// materializes each distinct key once, and scenario fingerprints hash the
// same string — so caching, seed derivation and content addressing cannot
// drift apart.  ScenarioSpec links declare one of these per direction
// (LinkSpec::synth), and the spec subsystem serializes them to JSON, which
// makes whole channel-model parameter spaces grid-sweepable from a spec
// file with no recompile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synth/models.h"
#include "synth/ops.h"
#include "trace/presets.h"
#include "trace/synthetic.h"
#include "trace/trace.h"

namespace sprout {

struct SynthSpec {
  enum class Base { kBrownian, kMarkov, kCox, kPreset, kTraceFile };

  Base base = Base::kBrownian;

  // Exactly one of these is live, selected by `base`.
  BrownianModelParams brownian;
  MarkovModelParams markov;
  CellProcessParams cox;
  std::string network = "Verizon LTE";              // kPreset
  LinkDirection direction = LinkDirection::kDownlink;
  std::string path;                                 // kTraceFile

  // Applied to the base trace in order; op i uses a sub-seed derived from
  // (seed, i), so inserting an op never reshuffles the others' draws.
  std::vector<SynthOp> ops;

  // Root seed for the base model and the op chain.
  std::uint64_t seed = 1;

  // Value-returning builders, safe to chain on temporaries:
  //   SynthSpec::markov_model({...}).with_op(SynthOp::scale(0.5))
  [[nodiscard]] static SynthSpec brownian_model(BrownianModelParams params,
                                                std::uint64_t seed = 1);
  [[nodiscard]] static SynthSpec markov_model(MarkovModelParams params,
                                              std::uint64_t seed = 1);
  [[nodiscard]] static SynthSpec cox_model(CellProcessParams params,
                                           std::uint64_t seed = 1);
  [[nodiscard]] static SynthSpec preset_base(std::string network,
                                             LinkDirection direction);
  [[nodiscard]] static SynthSpec trace_file(std::string path);
  [[nodiscard]] SynthSpec with_op(SynthOp op) const;
  [[nodiscard]] SynthSpec with_seed(std::uint64_t seed) const;

  // Short human-readable label ("brownian", "markov+2ops", ...).
  [[nodiscard]] std::string label() const;
};

// "brownian", "markov", "cox", "preset", "trace-file" — the spec JSON tags.
[[nodiscard]] std::string to_string(SynthSpec::Base base);

// Throws std::invalid_argument for invalid model parameters, an unknown
// preset network, an empty trace-file path, or an invalid op.
void validate_synth_spec(const SynthSpec& spec);

// Materializes the channel: generates (or loads) the base trace over
// `duration`, applies the op chain, and guarantees a non-empty result.
// Deterministic: equal (spec, duration) pairs yield byte-identical traces
// in any process on any thread.  Throws on validation failure or an
// unreadable trace file.
[[nodiscard]] Trace generate_synth_trace(const SynthSpec& spec,
                                         Duration duration);

// Canonical cache/fingerprint key: enumerates every live field of the spec
// (17-significant-digit doubles) plus the duration.  The per-sweep trace
// cache stores one entry per distinct key, and scenario fingerprints hash
// this same string — a field added to SynthSpec must appear here, which
// keeps caching and seed derivation consistent by construction.
[[nodiscard]] std::string synth_key(const SynthSpec& spec, Duration duration);

}  // namespace sprout

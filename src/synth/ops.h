// Composable transforms over delivery-opportunity traces.
//
// A SynthOp rewrites one Trace into another of the SAME duration, so any
// chain of ops stays a drop-in channel for the emulator.  Two families:
//
//  * Overlays — stochastic structure layered on top of any base channel
//    (a generated model, a preset, a saved capture):
//      - outage:   alternating on/off windows with exponential lengths;
//                  every opportunity inside an off window is dropped.
//      - sawtooth: periodic handover dips — at each period boundary the
//                  deliverable fraction drops to (1 - depth) and ramps
//                  linearly back to 1 over ramp_s (thinning).
//
//  * Augmentations — dataset-style ops over saved traces:
//      - scale:    rate scaling by superposition/thinning — each
//                  opportunity contributes floor(f) copies plus a
//                  Bernoulli(frac(f)) extra, so E[rate] scales exactly.
//      - jitter:   each opportunity moves by uniform(±jitter_s), clamped
//                  to the trace window and re-sorted.
//      - splice:   rebuilds the timeline from [from_s, to_s) windows of
//                  the base, tiled in order until the duration is filled.
//
// Ops are deterministic functions of (op, base trace, seed); the generator
// (synth/synth.h) derives one fixed sub-seed per position in the chain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace sprout {

struct SpliceSegment {
  double from_s = 0.0;
  double to_s = 0.0;
};

struct SynthOp {
  enum class Kind { kOutage, kSawtooth, kScale, kJitter, kSplice };

  Kind kind = Kind::kScale;

  // kOutage: exponential on/off alternation (means in seconds).
  double mean_on_s = 10.0;
  double mean_off_s = 0.5;

  // kSawtooth: handover period, dip depth in [0, 1], linear recovery time.
  double period_s = 15.0;
  double depth = 0.8;
  double ramp_s = 3.0;

  // kScale: rate multiplier (> 0; 1.0 is the identity).
  double factor = 1.0;

  // kJitter: uniform per-opportunity displacement bound (>= 0 seconds).
  double jitter_s = 0.005;

  // kSplice: windows of the base trace, tiled in list order.
  std::vector<SpliceSegment> segments;

  // Value-returning builders, safe to chain on temporaries.
  [[nodiscard]] static SynthOp outage(double mean_on_s, double mean_off_s);
  [[nodiscard]] static SynthOp sawtooth(double period_s, double depth,
                                        double ramp_s);
  [[nodiscard]] static SynthOp scale(double factor);
  [[nodiscard]] static SynthOp jitter(double jitter_s);
  [[nodiscard]] static SynthOp splice(std::vector<SpliceSegment> segments);
};

// "outage", "sawtooth", "scale", "jitter", "splice" — the spec JSON tags.
[[nodiscard]] std::string to_string(SynthOp::Kind kind);

// Upper bounds keeping every op parameter inside the simulator's integer
// microsecond range: seconds fields (~116 days) can never overflow a
// Duration, and a scale factor can never overflow an opportunity count.
inline constexpr double kMaxSynthOpSeconds = 1e7;
inline constexpr double kMaxSynthScaleFactor = 1e6;

// Throws std::invalid_argument (message names the op) for out-of-range
// parameters: non-positive on/off means, period, ramp, or factor; depth
// outside [0, 1]; negative jitter; an empty or unordered segment list;
// any seconds field beyond kMaxSynthOpSeconds or a factor beyond
// kMaxSynthScaleFactor.
void validate_synth_op(const SynthOp& op);

// Applies one validated op.  The result keeps the base's duration; it may
// be empty (e.g. an outage that swallowed everything) — the generator adds
// the non-emptiness guard once, after the whole chain.
[[nodiscard]] Trace apply_synth_op(const SynthOp& op, const Trace& base,
                                   std::uint64_t seed);

}  // namespace sprout

#include "synth/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace sprout {

SynthOp SynthOp::outage(double mean_on_s, double mean_off_s) {
  SynthOp op;
  op.kind = Kind::kOutage;
  op.mean_on_s = mean_on_s;
  op.mean_off_s = mean_off_s;
  return op;
}

SynthOp SynthOp::sawtooth(double period_s, double depth, double ramp_s) {
  SynthOp op;
  op.kind = Kind::kSawtooth;
  op.period_s = period_s;
  op.depth = depth;
  op.ramp_s = ramp_s;
  return op;
}

SynthOp SynthOp::scale(double factor) {
  SynthOp op;
  op.kind = Kind::kScale;
  op.factor = factor;
  return op;
}

SynthOp SynthOp::jitter(double jitter_s) {
  SynthOp op;
  op.kind = Kind::kJitter;
  op.jitter_s = jitter_s;
  return op;
}

SynthOp SynthOp::splice(std::vector<SpliceSegment> segments) {
  SynthOp op;
  op.kind = Kind::kSplice;
  op.segments = std::move(segments);
  return op;
}

std::string to_string(SynthOp::Kind kind) {
  switch (kind) {
    case SynthOp::Kind::kOutage: return "outage";
    case SynthOp::Kind::kSawtooth: return "sawtooth";
    case SynthOp::Kind::kScale: return "scale";
    case SynthOp::Kind::kJitter: return "jitter";
    case SynthOp::Kind::kSplice: return "splice";
  }
  return "?";
}

namespace {

// Seconds fields must stay convertible to the simulator's integer
// microseconds: an absurd value (1e18 s) would overflow from_seconds and
// wrap a cursor negative — a hang, not an error — so bound them here.
void check_seconds(const char* what, double v) {
  if (!(v <= kMaxSynthOpSeconds)) {  // catches NaN too
    throw std::invalid_argument(std::string(what) + " must be <= " +
                                std::to_string(kMaxSynthOpSeconds) +
                                " seconds");
  }
}

}  // namespace

void validate_synth_op(const SynthOp& op) {
  switch (op.kind) {
    case SynthOp::Kind::kOutage:
      if (op.mean_on_s <= 0.0 || op.mean_off_s <= 0.0) {
        throw std::invalid_argument(
            "outage op: mean_on_s and mean_off_s must be > 0");
      }
      check_seconds("outage op: mean_on_s", op.mean_on_s);
      check_seconds("outage op: mean_off_s", op.mean_off_s);
      return;
    case SynthOp::Kind::kSawtooth:
      if (op.period_s <= 0.0) {
        throw std::invalid_argument("sawtooth op: period_s must be > 0");
      }
      if (op.depth < 0.0 || op.depth > 1.0) {
        throw std::invalid_argument("sawtooth op: depth must be in [0, 1]");
      }
      if (op.ramp_s <= 0.0 || op.ramp_s > op.period_s) {
        throw std::invalid_argument(
            "sawtooth op: ramp_s must be in (0, period_s]");
      }
      check_seconds("sawtooth op: period_s", op.period_s);
      return;
    case SynthOp::Kind::kScale:
      if (op.factor <= 0.0 || !std::isfinite(op.factor)) {
        throw std::invalid_argument("scale op: factor must be finite and > 0");
      }
      if (op.factor > kMaxSynthScaleFactor) {
        throw std::invalid_argument("scale op: factor must be <= " +
                                    std::to_string(kMaxSynthScaleFactor));
      }
      return;
    case SynthOp::Kind::kJitter:
      if (op.jitter_s < 0.0) {
        throw std::invalid_argument("jitter op: jitter_s must be >= 0");
      }
      check_seconds("jitter op: jitter_s", op.jitter_s);
      return;
    case SynthOp::Kind::kSplice:
      if (op.segments.empty()) {
        throw std::invalid_argument("splice op: needs at least one segment");
      }
      for (const SpliceSegment& s : op.segments) {
        if (s.from_s < 0.0 || s.to_s <= s.from_s) {
          throw std::invalid_argument(
              "splice op: each segment needs 0 <= from_s < to_s");
        }
        check_seconds("splice op: to_s", s.to_s);
      }
      return;
  }
  throw std::invalid_argument("unknown synth op kind");
}

namespace {

Trace apply_outage(const SynthOp& op, const Trace& base, std::uint64_t seed) {
  Rng rng(seed);
  // Walk the on/off alternation across the whole duration, collecting the
  // off windows; the link starts "on".
  std::vector<std::pair<TimePoint, TimePoint>> off;
  const TimePoint end = TimePoint{} + base.duration();
  TimePoint cursor{};
  while (cursor < end) {
    cursor += from_seconds(rng.exponential(1.0 / op.mean_on_s));
    if (cursor >= end) break;
    const TimePoint resume =
        cursor + from_seconds(rng.exponential(1.0 / op.mean_off_s));
    off.emplace_back(cursor, std::min(resume, end));
    cursor = resume;
  }
  std::vector<TimePoint> kept;
  kept.reserve(base.size());
  std::size_t w = 0;
  for (const TimePoint t : base.opportunities()) {
    while (w < off.size() && off[w].second <= t) ++w;
    const bool dark = w < off.size() && off[w].first <= t && t < off[w].second;
    if (!dark) kept.push_back(t);
  }
  return Trace{std::move(kept), base.duration()};
}

Trace apply_sawtooth(const SynthOp& op, const Trace& base,
                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimePoint> kept;
  kept.reserve(base.size());
  for (const TimePoint t : base.opportunities()) {
    const double phase = std::fmod(to_seconds(t.time_since_epoch()),
                                   op.period_s);
    // Dip to (1 - depth) at each period boundary, linear recovery.
    const double envelope =
        phase < op.ramp_s
            ? (1.0 - op.depth) + op.depth * phase / op.ramp_s
            : 1.0;
    if (rng.uniform() < envelope) kept.push_back(t);
  }
  return Trace{std::move(kept), base.duration()};
}

Trace apply_scale(const SynthOp& op, const Trace& base, std::uint64_t seed) {
  Rng rng(seed);
  const double whole = std::floor(op.factor);
  const double frac = op.factor - whole;
  const auto copies = static_cast<std::int64_t>(whole);
  std::vector<TimePoint> out;
  out.reserve(static_cast<std::size_t>(
      static_cast<double>(base.size()) * op.factor) + 1);
  for (const TimePoint t : base.opportunities()) {
    std::int64_t n = copies;
    if (frac > 0.0 && rng.bernoulli(frac)) ++n;
    for (std::int64_t i = 0; i < n; ++i) out.push_back(t);
  }
  return Trace{std::move(out), base.duration()};
}

Trace apply_jitter(const SynthOp& op, const Trace& base, std::uint64_t seed) {
  Rng rng(seed);
  const Duration max_at = base.duration() - usec(1);
  std::vector<TimePoint> out;
  out.reserve(base.size());
  for (const TimePoint t : base.opportunities()) {
    const double shift = rng.uniform(-op.jitter_s, op.jitter_s);
    TimePoint moved = t + from_seconds(shift);
    moved = std::max(moved, TimePoint{});
    moved = std::min(moved, TimePoint{} + max_at);
    out.push_back(moved);
  }
  std::sort(out.begin(), out.end());
  return Trace{std::move(out), base.duration()};
}

Trace apply_splice(const SynthOp& op, const Trace& base) {
  // Rebuild the timeline by tiling the listed windows of the base, in
  // order, until the base duration is filled.  Purely deterministic.
  const auto& opportunities = base.opportunities();
  const Duration duration = base.duration();
  std::vector<TimePoint> out;
  out.reserve(base.size());
  Duration cursor = Duration::zero();
  for (std::size_t i = 0; cursor < duration; i = (i + 1) % op.segments.size()) {
    const SpliceSegment& seg = op.segments[i];
    const TimePoint from = TimePoint{} + from_seconds(seg.from_s);
    const TimePoint to = TimePoint{} + from_seconds(seg.to_s);
    const auto lo = std::lower_bound(opportunities.begin(),
                                     opportunities.end(), from);
    const auto hi = std::lower_bound(opportunities.begin(),
                                     opportunities.end(), to);
    for (auto it = lo; it != hi; ++it) {
      const Duration at = cursor + (*it - from);
      if (at < duration) out.push_back(TimePoint{} + at);
    }
    cursor += to - from;
  }
  return Trace{std::move(out), duration};
}

}  // namespace

Trace apply_synth_op(const SynthOp& op, const Trace& base,
                     std::uint64_t seed) {
  validate_synth_op(op);
  switch (op.kind) {
    case SynthOp::Kind::kOutage: return apply_outage(op, base, seed);
    case SynthOp::Kind::kSawtooth: return apply_sawtooth(op, base, seed);
    case SynthOp::Kind::kScale: return apply_scale(op, base, seed);
    case SynthOp::Kind::kJitter: return apply_jitter(op, base, seed);
    case SynthOp::Kind::kSplice: return apply_splice(op, base);
  }
  return base;
}

}  // namespace sprout

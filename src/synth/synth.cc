#include "synth/synth.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace sprout {

SynthSpec SynthSpec::brownian_model(BrownianModelParams params,
                                    std::uint64_t seed) {
  SynthSpec spec;
  spec.base = Base::kBrownian;
  spec.brownian = params;
  spec.seed = seed;
  return spec;
}

SynthSpec SynthSpec::markov_model(MarkovModelParams params,
                                  std::uint64_t seed) {
  SynthSpec spec;
  spec.base = Base::kMarkov;
  spec.markov = std::move(params);
  spec.seed = seed;
  return spec;
}

SynthSpec SynthSpec::cox_model(CellProcessParams params, std::uint64_t seed) {
  SynthSpec spec;
  spec.base = Base::kCox;
  spec.cox = params;
  spec.seed = seed;
  return spec;
}

SynthSpec SynthSpec::preset_base(std::string network,
                                 LinkDirection direction) {
  SynthSpec spec;
  spec.base = Base::kPreset;
  spec.network = std::move(network);
  spec.direction = direction;
  return spec;
}

SynthSpec SynthSpec::trace_file(std::string path) {
  SynthSpec spec;
  spec.base = Base::kTraceFile;
  spec.path = std::move(path);
  return spec;
}

SynthSpec SynthSpec::with_op(SynthOp op) const {
  SynthSpec spec = *this;
  spec.ops.push_back(std::move(op));
  return spec;
}

SynthSpec SynthSpec::with_seed(std::uint64_t new_seed) const {
  SynthSpec spec = *this;
  spec.seed = new_seed;
  return spec;
}

std::string SynthSpec::label() const {
  std::string out = to_string(base);
  if (!ops.empty()) {
    out += '+';
    out += std::to_string(ops.size());
    out += ops.size() == 1 ? "op" : "ops";
  }
  return out;
}

std::string to_string(SynthSpec::Base base) {
  switch (base) {
    case SynthSpec::Base::kBrownian: return "brownian";
    case SynthSpec::Base::kMarkov: return "markov";
    case SynthSpec::Base::kCox: return "cox";
    case SynthSpec::Base::kPreset: return "preset";
    case SynthSpec::Base::kTraceFile: return "trace-file";
  }
  return "?";
}

namespace {

// Cheap constructor-only validation of the model families (the process
// constructors own the real checks; building one runs them).
void validate_base(const SynthSpec& spec) {
  switch (spec.base) {
    case SynthSpec::Base::kBrownian:
      (void)BrownianRateProcess(spec.brownian, 1);
      return;
    case SynthSpec::Base::kMarkov:
      (void)MarkovRateProcess(spec.markov, 1);
      return;
    case SynthSpec::Base::kCox:
      if (spec.cox.mean_rate_pps <= 0.0 ||
          spec.cox.max_rate_pps < spec.cox.mean_rate_pps ||
          spec.cox.volatility_pps < 0.0 || spec.cox.outage_min_s <= 0.0 ||
          spec.cox.outage_alpha <= 0.0 || spec.cox.step <= Duration::zero()) {
        throw std::invalid_argument("cox model: invalid process parameters");
      }
      return;
    case SynthSpec::Base::kPreset:
      // Throws std::out_of_range for an unknown network, surfaced as
      // invalid_argument so all spec failures share one type.
      try {
        (void)find_link_preset(spec.network, spec.direction);
      } catch (const std::out_of_range&) {
        throw std::invalid_argument("synth preset base: unknown network \"" +
                                    spec.network + "\"");
      }
      return;
    case SynthSpec::Base::kTraceFile:
      if (spec.path.empty()) {
        throw std::invalid_argument("synth trace-file base: empty path");
      }
      return;
  }
  throw std::invalid_argument("unknown synth base");
}

// splitmix64 finalizer: the op chain's sub-seed for position `index`.
// Pure mixing (never the raw seed), so op draws are independent of the
// base model's stream and of each other.
std::uint64_t op_seed(std::uint64_t seed, std::size_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Trace base_trace(const SynthSpec& spec, Duration duration) {
  switch (spec.base) {
    case SynthSpec::Base::kBrownian: {
      BrownianRateProcess process(spec.brownian, spec.seed);
      // Placement draws ride a forked stream, mirroring generate_trace.
      return poisson_trace_from_rate([&] { return process.advance(); },
                                     spec.brownian.step, duration,
                                     spec.seed ^ 0x9e3779b97f4a7c15ull);
    }
    case SynthSpec::Base::kMarkov: {
      MarkovRateProcess process(spec.markov, spec.seed);
      return poisson_trace_from_rate([&] { return process.advance(); },
                                     spec.markov.step, duration,
                                     spec.seed ^ 0x9e3779b97f4a7c15ull);
    }
    case SynthSpec::Base::kCox:
      return generate_trace(spec.cox, duration, spec.seed);
    case SynthSpec::Base::kPreset:
      return preset_trace(find_link_preset(spec.network, spec.direction),
                          duration);
    case SynthSpec::Base::kTraceFile: {
      // Saved captures keep their recorded length; re-base onto the
      // requested duration so ops and the emulator see one window (the
      // trace's own wraparound covers a shorter capture).
      Trace loaded = read_trace_file(spec.path);
      std::vector<TimePoint> opportunities;
      const std::size_t n = loaded.size();
      for (std::size_t i = 0; n > 0; ++i) {
        const TimePoint at = loaded.opportunity(i);
        if (at.time_since_epoch() >= duration) break;
        opportunities.push_back(at);
      }
      return Trace{std::move(opportunities), duration};
    }
  }
  throw std::invalid_argument("unknown synth base");
}

}  // namespace

void validate_synth_spec(const SynthSpec& spec) {
  validate_base(spec);
  for (const SynthOp& op : spec.ops) validate_synth_op(op);
}

Trace generate_synth_trace(const SynthSpec& spec, Duration duration) {
  if (duration <= Duration::zero()) {
    throw std::invalid_argument("synth trace duration must be > 0");
  }
  validate_synth_spec(spec);
  Trace trace = base_trace(spec, duration);
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    trace = apply_synth_op(spec.ops[i], trace, op_seed(spec.seed, i));
  }
  if (trace.empty()) {
    // Mirror generate_trace's guarantee: downstream consumers need no
    // special case, and an all-outage channel is not a useful experiment.
    return Trace{{TimePoint{} + duration / 2}, duration};
  }
  return trace;
}

std::string synth_key(const SynthSpec& spec, Duration duration) {
  std::ostringstream os;
  os.precision(17);
  os << "synthspec|" << to_string(spec.base);
  switch (spec.base) {
    case SynthSpec::Base::kBrownian:
      os << '|' << spec.brownian.init_rate_pps << '|'
         << spec.brownian.sigma_pps_per_sqrt_s << '|'
         << spec.brownian.max_rate_pps << '|'
         << spec.brownian.outage_escape_rate_per_s << '|'
         << spec.brownian.resume_rate_pps << '|'
         << spec.brownian.step.count();
      break;
    case SynthSpec::Base::kMarkov:
      os << '|' << spec.markov.states.size();
      for (const MarkovState& s : spec.markov.states) {
        os << '|' << s.rate_pps << ',' << s.mean_dwell_s;
      }
      os << '|' << spec.markov.step.count();
      break;
    case SynthSpec::Base::kCox:
      os << '|' << spec.cox.mean_rate_pps << '|' << spec.cox.volatility_pps
         << '|' << spec.cox.reversion_per_s << '|' << spec.cox.max_rate_pps
         << '|' << spec.cox.outage_hazard_per_s << '|' << spec.cox.outage_min_s
         << '|' << spec.cox.outage_alpha << '|' << spec.cox.step.count();
      break;
    case SynthSpec::Base::kPreset:
      os << '|' << spec.network << '|' << to_string(spec.direction);
      break;
    case SynthSpec::Base::kTraceFile:
      os << '|' << spec.path;
      break;
  }
  os << "|ops=" << spec.ops.size();
  for (const SynthOp& op : spec.ops) {
    os << '|' << to_string(op.kind) << ':';
    switch (op.kind) {
      case SynthOp::Kind::kOutage:
        os << op.mean_on_s << ',' << op.mean_off_s;
        break;
      case SynthOp::Kind::kSawtooth:
        os << op.period_s << ',' << op.depth << ',' << op.ramp_s;
        break;
      case SynthOp::Kind::kScale:
        os << op.factor;
        break;
      case SynthOp::Kind::kJitter:
        os << op.jitter_s;
        break;
      case SynthOp::Kind::kSplice:
        for (std::size_t i = 0; i < op.segments.size(); ++i) {
          os << (i == 0 ? "" : ";") << op.segments[i].from_s << ','
             << op.segments[i].to_s;
        }
        break;
    }
  }
  os << "|seed=" << spec.seed << "|dur=" << duration.count();
  return os.str();
}

}  // namespace sprout

#include "synth/models.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sprout {

BrownianRateProcess::BrownianRateProcess(const BrownianModelParams& params,
                                         std::uint64_t seed)
    : params_(params), rng_(seed), rate_(params.init_rate_pps) {
  if (params_.init_rate_pps <= 0.0) {
    throw std::invalid_argument("brownian model: init_rate_pps must be > 0");
  }
  if (params_.max_rate_pps < params_.init_rate_pps) {
    throw std::invalid_argument(
        "brownian model: max_rate_pps must be >= init_rate_pps");
  }
  if (params_.sigma_pps_per_sqrt_s < 0.0) {
    throw std::invalid_argument(
        "brownian model: sigma_pps_per_sqrt_s must be >= 0");
  }
  if (params_.outage_escape_rate_per_s <= 0.0) {
    throw std::invalid_argument(
        "brownian model: outage_escape_rate_per_s must be > 0");
  }
  if (params_.resume_rate_pps <= 0.0) {
    throw std::invalid_argument("brownian model: resume_rate_pps must be > 0");
  }
  if (params_.step <= Duration::zero()) {
    throw std::invalid_argument("brownian model: step must be > 0");
  }
}

double BrownianRateProcess::advance() {
  const double dt = to_seconds(params_.step);
  if (in_outage_) {
    outage_left_s_ -= dt;
    if (outage_left_s_ <= 0.0) {
      in_outage_ = false;
      rate_ = params_.resume_rate_pps;
    }
    return current_pps();
  }
  // Free Brownian step — no drift, no mean reversion (the paper's model).
  rate_ += params_.sigma_pps_per_sqrt_s * std::sqrt(dt) * rng_.normal(0.0, 1.0);
  if (rate_ > params_.max_rate_pps) {
    rate_ = 2.0 * params_.max_rate_pps - rate_;  // reflect at the ceiling
  }
  if (rate_ <= 0.0) {
    // The walk hit zero: the link is in a sticky outage it escapes at the
    // exponential rate λz — the distribution Sprout's filter assumes.
    in_outage_ = true;
    outage_left_s_ = rng_.exponential(params_.outage_escape_rate_per_s);
    rate_ = 0.0;
    return 0.0;
  }
  rate_ = std::clamp(rate_, 0.0, params_.max_rate_pps);
  return current_pps();
}

MarkovRateProcess::MarkovRateProcess(const MarkovModelParams& params,
                                     std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.states.empty()) {
    throw std::invalid_argument("markov model: needs at least one state");
  }
  for (const MarkovState& s : params_.states) {
    if (s.rate_pps < 0.0) {
      throw std::invalid_argument("markov model: state rate_pps must be >= 0");
    }
    if (s.mean_dwell_s <= 0.0) {
      throw std::invalid_argument(
          "markov model: state mean_dwell_s must be > 0");
    }
  }
  if (params_.step <= Duration::zero()) {
    throw std::invalid_argument("markov model: step must be > 0");
  }
  dwell_left_s_ = rng_.exponential(1.0 / params_.states[0].mean_dwell_s);
}

double MarkovRateProcess::advance() {
  const double dt = to_seconds(params_.step);
  dwell_left_s_ -= dt;
  while (dwell_left_s_ <= 0.0) {
    const std::size_t n = params_.states.size();
    if (n > 1) {
      // Jump uniformly to one of the OTHER states.
      std::size_t next = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      if (next >= state_) ++next;
      state_ = next;
    }
    dwell_left_s_ += rng_.exponential(1.0 / params_.states[state_].mean_dwell_s);
  }
  return current_pps();
}

Trace poisson_trace_from_rate(const std::function<double()>& advance_pps,
                              Duration step, Duration duration,
                              std::uint64_t placement_seed) {
  Rng rng(placement_seed);
  std::vector<TimePoint> opportunities;
  const double dt = to_seconds(step);
  std::vector<double> offsets;
  for (TimePoint t{}; t < TimePoint{} + duration; t += step) {
    const double rate = advance_pps();
    const std::int64_t count = rng.poisson(rate * dt);
    if (count == 0) continue;
    offsets.clear();
    for (std::int64_t i = 0; i < count; ++i) {
      offsets.push_back(rng.uniform(0.0, dt));
    }
    std::sort(offsets.begin(), offsets.end());
    for (const double off : offsets) {
      const TimePoint at = t + from_seconds(off);
      // A draw in the final, clipped step could land past the duration.
      if (at.time_since_epoch() < duration) opportunities.push_back(at);
    }
  }
  return Trace{std::move(opportunities), duration};
}

}  // namespace sprout

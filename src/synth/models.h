// Parametric hidden-rate models for synthetic cellular channels.
//
// The trace layer's Cox generator (trace/synthetic.h) deliberately
// MISMATCHES Sprout's inference model (mean reversion, Pareto outages).
// This header adds the two families the generator subsystem needs on top:
//
//  * BrownianRateProcess — the paper's own §4 model, exactly as Sprout
//    assumes it: λ(t) wanders in free Brownian motion (no mean reversion),
//    reflects at a rate ceiling, and sticks at zero in outages it escapes
//    at an exponential rate λz.  Testing Sprout against this process is
//    the matched-model experiment; against the Cox process, the
//    mismatched one.
//
//  * MarkovRateProcess — a Markov-modulated (MMPP) rate: a small set of
//    states, each with its own delivery rate and exponential mean dwell
//    time, jumping uniformly among the other states.  This is the
//    regime-switching channel of the SproutMMPP forecaster variant and of
//    stochastic-geometry cellular models (Danufane & Di Renzo), where the
//    SHAPE of the rate process — not its mean — drives delay.
//
// Both processes advance in fixed steps and are deterministic functions of
// (params, seed); poisson_trace_from_rate turns any of them into a
// delivery-opportunity Trace by the same conditional-Poisson placement the
// Cox generator uses.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"
#include "util/units.h"

namespace sprout {

// The paper's §4 channel: Brownian rate, reflective ceiling, sticky outage
// with exponential escape — Sprout's modeling assumptions made literal.
struct BrownianModelParams {
  // Rate the hidden process starts from, MTU-sized packets per second.
  double init_rate_pps = 400.0;
  // Brownian noise power, packets/s per sqrt(s) (the paper's σ = 200).
  double sigma_pps_per_sqrt_s = 200.0;
  // Hard ceiling (reflection) on the hidden rate.
  double max_rate_pps = 1000.0;
  // Escape rate λz out of the zero-rate outage state, per second: outage
  // durations are exponential with mean 1/λz, exactly as Sprout assumes.
  double outage_escape_rate_per_s = 1.0;
  // Rate the link resumes at when an outage ends.  Too small a value
  // traps the walk at the zero boundary (a free Brownian walk at r
  // re-hits 0 on the (r/σ)² timescale), turning every outage into a
  // flicker storm; the default resumes far enough out that outages stay
  // sticky-but-escapable, as in the paper's captures.
  double resume_rate_pps = 150.0;
  // Simulation step for the hidden-rate process.
  Duration step = msec(20);
};

class BrownianRateProcess {
 public:
  // Throws std::invalid_argument for non-positive rates/step or a ceiling
  // below the initial rate.
  BrownianRateProcess(const BrownianModelParams& params, std::uint64_t seed);

  // Advances one `params.step` and returns the rate holding in that step.
  double advance();

  [[nodiscard]] double current_pps() const { return in_outage_ ? 0.0 : rate_; }
  [[nodiscard]] bool in_outage() const { return in_outage_; }
  [[nodiscard]] const BrownianModelParams& params() const { return params_; }

 private:
  BrownianModelParams params_;
  Rng rng_;
  double rate_;
  bool in_outage_ = false;
  double outage_left_s_ = 0.0;
};

// One regime of a Markov-modulated channel.
struct MarkovState {
  double rate_pps = 0.0;     // delivery rate while in this state
  double mean_dwell_s = 1.0; // exponential mean time spent per visit
};

struct MarkovModelParams {
  // Default: a weak/typical/burst three-regime cell.
  std::vector<MarkovState> states = {
      {50.0, 4.0}, {300.0, 8.0}, {800.0, 2.0}};
  // Granularity at which state changes take effect (and at which the
  // emitted Poisson counts are drawn).
  Duration step = msec(20);
};

class MarkovRateProcess {
 public:
  // Throws std::invalid_argument for an empty state list, a negative rate,
  // a non-positive dwell time, or a non-positive step.
  MarkovRateProcess(const MarkovModelParams& params, std::uint64_t seed);

  // Advances one `params.step` and returns the rate holding in that step.
  double advance();

  [[nodiscard]] double current_pps() const {
    return params_.states[state_].rate_pps;
  }
  [[nodiscard]] std::size_t state() const { return state_; }
  [[nodiscard]] const MarkovModelParams& params() const { return params_; }

 private:
  MarkovModelParams params_;
  Rng rng_;
  std::size_t state_ = 0;
  double dwell_left_s_ = 0.0;
};

// Samples a delivery-opportunity trace from any stepwise rate process:
// per step, a Poisson count of opportunities placed uniformly within the
// step (the exact conditional law of a Poisson process given its count —
// the same placement trace/synthetic.cc uses).  `advance_pps` is called
// once per step and must return the rate holding in that step.  The
// returned trace may be empty; callers guarantee non-emptiness themselves.
[[nodiscard]] Trace poisson_trace_from_rate(
    const std::function<double()>& advance_pps, Duration step,
    Duration duration, std::uint64_t placement_seed);

}  // namespace sprout
